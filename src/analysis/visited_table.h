#ifndef CFC_ANALYSIS_VISITED_TABLE_H
#define CFC_ANALYSIS_VISITED_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/slab_arena.h"

namespace cfc {

/// Flat visited-state cache for the explorer's dominance pruning.
///
/// Maps a 64-bit state fingerprint to the antichain of (depth, preemptions)
/// budgets it was already explored with; a new visit is redundant iff some
/// stored visit had at least as much remaining budget (depth' <= depth and
/// preempt' <= preempt — leaf objectives are monotone along a run, so the
/// dominating subtree's leaves subsume the dominated one's).
///
/// The representation replaces the former
/// unordered_map<u64, vector<pair<int,int>>>: open addressing with linear
/// probing over a power-of-two slot array, each slot holding the key and up
/// to two dominance pairs inline (exhaustive searches keep exactly one —
/// preemptions are constant 0, so the antichain is a singleton); longer
/// antichains spill into pointer-linked nodes carved from a SlabArena
/// (stable addresses, geometric blocks, no realloc copying) and recycled
/// through a free list. One lookup is one hash, a handful of contiguous
/// probes, and zero allocation steady-state; bytes() surfaces the reserved
/// footprint and live_bytes() the occupied subset for ExploreStats
/// accounting.
class VisitedTable {
 public:
  VisitedTable() = default;

  /// True iff a stored visit of `key` dominates (depth, preempt).
  [[nodiscard]] bool dominated(std::uint64_t key, int depth,
                               int preempt) const;

  /// Records a visit of `key` at (depth, preempt), dropping stored pairs
  /// the new one dominates. Values must fit 16 bits (the explorer's depth
  /// budgets are far below that; throws std::out_of_range otherwise).
  void insert(std::uint64_t key, int depth, int preempt);

  /// dominated() + insert() in one probe — the explorer's per-node call:
  /// returns true (and stores nothing) when a stored visit dominates,
  /// otherwise records the visit and returns false.
  bool check_and_insert(std::uint64_t key, int depth, int preempt);

  /// Distinct keys stored.
  [[nodiscard]] std::size_t size() const { return used_; }

  /// Bytes *reserved* by the table: slot-array capacity plus every spill
  /// slab, including freelisted nodes — the number that tracks the actual
  /// memory footprint.
  [[nodiscard]] std::size_t bytes() const;

  /// Bytes of *live* entries: occupied slots plus in-chain spill nodes.
  /// Always <= bytes(); the gap is growth headroom plus the spill
  /// freelist.
  [[nodiscard]] std::size_t live_bytes() const;

 private:
  static constexpr std::uint32_t kNoPair = 0xffffffffu;
  static constexpr std::size_t kInlinePairs = 2;

  struct SpillNode {
    std::uint32_t pair = kNoPair;
    SpillNode* next = nullptr;
  };

  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty (real key 0 is remapped)
    std::uint32_t inline_pairs[kInlinePairs] = {kNoPair, kNoPair};
    SpillNode* spill_head = nullptr;
  };

  [[nodiscard]] static std::uint64_t normalize(std::uint64_t key);
  [[nodiscard]] bool slot_dominates(const Slot& slot, int depth,
                                    int preempt) const;
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;
  void grow();
  void insert_into(Slot& slot, std::uint64_t key, int depth, int preempt);
  void spill_push(Slot& slot, std::uint32_t pair);

  std::vector<Slot> slots_;
  SlabArena spill_arena_{1024};
  SpillNode* spill_free_ = nullptr;  ///< recycled nodes, linked via next
  std::size_t spill_live_ = 0;       ///< nodes currently in some chain
  std::size_t used_ = 0;
};

}  // namespace cfc

#endif  // CFC_ANALYSIS_VISITED_TABLE_H
