#ifndef CFC_ANALYSIS_VISITED_TABLE_H
#define CFC_ANALYSIS_VISITED_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/slab_arena.h"

namespace cfc {

/// Flat visited-state cache for the explorer's dominance pruning.
///
/// Maps a 64-bit state fingerprint to the antichain of (depth, preemptions)
/// budgets it was already explored with; a new visit is redundant iff some
/// stored visit had at least as much remaining budget (depth' <= depth and
/// preempt' <= preempt — leaf objectives are monotone along a run, so the
/// dominating subtree's leaves subsume the dominated one's).
///
/// The representation replaces the former
/// unordered_map<u64, vector<pair<int,int>>>: open addressing with linear
/// probing over a power-of-two slot array, each slot holding the key and up
/// to two dominance pairs inline (exhaustive searches keep exactly one —
/// preemptions are constant 0, so the antichain is a singleton); longer
/// antichains spill into pointer-linked nodes carved from a SlabArena
/// (stable addresses, geometric blocks, no realloc copying) and recycled
/// through a free list. One lookup is one hash, a handful of contiguous
/// probes, and zero allocation steady-state; bytes() surfaces the reserved
/// footprint and live_bytes() the occupied subset for ExploreStats
/// accounting.
class VisitedTable {
 public:
  VisitedTable() = default;

  /// True iff a stored visit of `key` dominates (depth, preempt).
  [[nodiscard]] bool dominated(std::uint64_t key, int depth,
                               int preempt) const;

  /// Records a visit of `key` at (depth, preempt), dropping stored pairs
  /// the new one dominates. Values must fit 16 bits (the explorer's depth
  /// budgets are far below that; throws std::out_of_range otherwise).
  void insert(std::uint64_t key, int depth, int preempt);

  /// dominated() + insert() in one probe — the explorer's per-node call:
  /// returns true (and stores nothing) when a stored visit dominates,
  /// otherwise records the visit and returns false.
  bool check_and_insert(std::uint64_t key, int depth, int preempt);

  /// Distinct keys stored.
  [[nodiscard]] std::size_t size() const { return used_; }

  /// Bytes *reserved* by the table: slot-array capacity plus every spill
  /// slab, including freelisted nodes — the number that tracks the actual
  /// memory footprint.
  [[nodiscard]] std::size_t bytes() const;

  /// Bytes of *live* entries: occupied slots plus in-chain spill nodes.
  /// Always <= bytes(); the gap is growth headroom plus the spill
  /// freelist.
  [[nodiscard]] std::size_t live_bytes() const;

 private:
  static constexpr std::uint32_t kNoPair = 0xffffffffu;
  static constexpr std::size_t kInlinePairs = 2;

  struct SpillNode {
    std::uint32_t pair = kNoPair;
    SpillNode* next = nullptr;
  };

  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty (real key 0 is remapped)
    std::uint32_t inline_pairs[kInlinePairs] = {kNoPair, kNoPair};
    SpillNode* spill_head = nullptr;
  };

  [[nodiscard]] static std::uint64_t normalize(std::uint64_t key);
  [[nodiscard]] bool slot_dominates(const Slot& slot, int depth,
                                    int preempt) const;
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;
  void grow();
  void insert_into(Slot& slot, std::uint64_t key, int depth, int preempt);
  void spill_push(Slot& slot, std::uint32_t pair);

  std::vector<Slot> slots_;
  SlabArena spill_arena_{1024};
  SpillNode* spill_free_ = nullptr;  ///< recycled nodes, linked via next
  std::size_t spill_live_ = 0;       ///< nodes currently in some chain
  std::size_t used_ = 0;
};

/// Sleep-set-aware visited cache for *stateful* source-DPOR.
///
/// Maps a state key (state fingerprint x objective digest — the sleep mask
/// is NOT folded into the key) to the antichain of sleep masks the state
/// was already explored under. The subsumption rule: a stored visit with
/// sleep set S covers a new visit with sleep set S' iff S is a subset of
/// S' — the stored subtree explored every branch outside S, a superset of
/// the branches outside S', and leaf objectives are monotone, so every
/// value the new visit could certify was already merged by the stored one.
/// Depth needs no explicit dimension: process digests fold the full
/// per-process unit history, so equal fingerprints imply equal schedule
/// length (equal remaining depth budget) automatically.
///
/// Same layout discipline as VisitedTable: open addressing over a
/// power-of-two slot array, two inline masks per key, longer antichains
/// spilled into arena-backed nodes recycled through a free list. clear()
/// keeps every reservation (slot array, slabs) so a worker can reuse one
/// cache across work items with zero steady-state allocation — and the
/// per-item clearing is what keeps the pruning (and every counter derived
/// from it) thread-count invariant under the work-stealing executor.
class SleepCache {
 public:
  SleepCache() = default;

  /// True iff a stored visit of `key` subsumes a visit under `sleep`
  /// (some stored mask is a subset of `sleep`).
  [[nodiscard]] bool subsumed(std::uint64_t key, std::uint32_t sleep) const;

  /// Records a visit of `key` under `sleep`, dropping stored supersets
  /// (they are subsumed by the new, wider exploration).
  void insert(std::uint64_t key, std::uint32_t sleep);

  /// subsumed() + insert() in one probe — the explorer's per-node call.
  bool check_and_insert(std::uint64_t key, std::uint32_t sleep);

  /// Drops every entry but keeps the reserved capacity (slot array and
  /// spill slabs) for reuse.
  void clear();

  /// Distinct keys stored.
  [[nodiscard]] std::size_t size() const { return used_; }

  /// Bytes reserved (slot capacity + spill slabs, freelist included).
  [[nodiscard]] std::size_t bytes() const;

  /// Bytes of live entries (occupied slots + in-chain spill nodes).
  [[nodiscard]] std::size_t live_bytes() const;

 private:
  struct SpillNode {
    std::uint32_t mask = 0;
    SpillNode* next = nullptr;
  };

  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty (real key 0 is remapped)
    std::uint32_t inline_masks[2] = {0, 0};
    std::uint8_t inline_count = 0;  ///< masks are arbitrary: count, not
                                    ///< sentinel, marks the used slots
    SpillNode* spill_head = nullptr;
  };

  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;
  void grow();
  void insert_into(Slot& slot, std::uint64_t key, std::uint32_t sleep);

  std::vector<Slot> slots_;
  SlabArena spill_arena_{1024};
  SpillNode* spill_free_ = nullptr;
  std::size_t spill_live_ = 0;
  std::size_t used_ = 0;
};

}  // namespace cfc

#endif  // CFC_ANALYSIS_VISITED_TABLE_H
