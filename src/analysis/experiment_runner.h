#ifndef CFC_ANALYSIS_EXPERIMENT_RUNNER_H
#define CFC_ANALYSIS_EXPERIMENT_RUNNER_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cfc {

/// A std::thread pool for the experiment grids: fans index ranges across
/// worker threads. Designed for the measurement pipeline's determinism
/// contract — parallel_for only schedules; callers write results into
/// per-index slots and reduce them in index order afterwards, so a run is
/// bit-identical regardless of thread count.
///
/// Properties:
///  * the calling thread participates in the work, so nested parallel_for
///    calls (a parallel census whose cells run parallel searches) cannot
///    deadlock even when every pool thread is busy;
///  * exceptions thrown by the body are captured and the first one is
///    rethrown on the calling thread after all indices finish;
///  * `ExperimentRunner(1)` never spawns a thread and runs everything
///    inline — the reference sequential engine.
class ExperimentRunner {
 public:
  /// `threads` <= 0 picks std::thread::hardware_concurrency().
  explicit ExperimentRunner(int threads = 0);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  [[nodiscard]] int thread_count() const noexcept { return threads_; }

  /// Runs body(i) for every i in [0, count), distributed over the pool plus
  /// the calling thread; returns when all indices completed. Rethrows the
  /// first body exception (after draining the remaining indices).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide default pool, sized to the hardware.
  [[nodiscard]] static ExperimentRunner& shared();

 private:
  struct Job;

  void worker_loop();

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

/// Resolves an optional runner argument: `runner` if non-null, else the
/// shared pool. Experiment entry points take `ExperimentRunner* runner =
/// nullptr` so callers opt into a specific engine (e.g. a single-threaded
/// one for determinism tests) without plumbing a pool everywhere.
[[nodiscard]] ExperimentRunner& runner_or_shared(ExperimentRunner* runner);

}  // namespace cfc

#endif  // CFC_ANALYSIS_EXPERIMENT_RUNNER_H
