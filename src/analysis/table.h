#ifndef CFC_ANALYSIS_TABLE_H
#define CFC_ANALYSIS_TABLE_H

#include <string>
#include <vector>

namespace cfc {

/// Minimal fixed-width ASCII table renderer used by the benchmark harness
/// to print the paper's two summary tables next to measured values.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column alignment (left for the first
  /// column, right for the rest).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfc

#endif  // CFC_ANALYSIS_TABLE_H
