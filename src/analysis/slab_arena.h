#ifndef CFC_ANALYSIS_SLAB_ARENA_H
#define CFC_ANALYSIS_SLAB_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace cfc {

/// Geometric slab allocator for trivially-destructible scratch data — the
/// FrameArena idea (sched/frame_arena.h) generalized to raw typed storage.
/// Blocks double in size and are never freed or moved, so every pointer an
/// alloc() returns stays valid for the arena's lifetime; reset() rewinds
/// the bump cursor and reuses the blocks wholesale (steady state, zero
/// heap traffic). Single-owner, not thread-safe: each user — the parallel
/// planner's work-item prefixes, a VisitedTable's spill pool — owns its
/// own arena.
class SlabArena {
 public:
  explicit SlabArena(std::size_t first_block_bytes = 4096)
      : first_block_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Uninitialized storage for `count` objects of T. T must be trivially
  /// destructible (reset() never runs destructors) and no more aligned
  /// than std::max_align_t.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "SlabArena storage is reclaimed without destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(raw_alloc(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to empty, keeping every block for reuse. All
  /// previously returned pointers become dangling.
  void reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes held across all blocks (the reserved footprint).
  [[nodiscard]] std::uint64_t bytes_reserved() const {
    std::uint64_t total = 0;
    for (const Block& b : blocks_) {
      total += b.size;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    if (bytes == 0) {
      bytes = 1;  // distinct non-null results keep callers simple
    }
    used_ = (used_ + (align - 1)) & ~(align - 1);
    while (block_ < blocks_.size() && used_ + bytes > blocks_[block_].size) {
      ++block_;
      used_ = 0;  // block starts are max_align_t-aligned
    }
    if (block_ == blocks_.size()) {
      std::size_t size = blocks_.empty() ? first_block_
                                         : blocks_.back().size * 2;
      while (size < bytes) {
        size *= 2;
      }
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
      used_ = 0;
    }
    std::byte* p = blocks_[block_].data.get() + used_;
    used_ += bytes;
    return p;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< index of the block the cursor is in
  std::size_t used_ = 0;   ///< bytes consumed in that block
  std::size_t first_block_;
};

}  // namespace cfc

#endif  // CFC_ANALYSIS_SLAB_ARENA_H
