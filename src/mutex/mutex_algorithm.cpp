#include "mutex/mutex_algorithm.h"

#include <stdexcept>

namespace cfc {

Task<void> mutex_driver(ProcessContext& ctx, MutexAlgorithm& alg, int slot,
                        int sessions) {
  for (int s = 0; s < sessions; ++s) {
    ctx.set_section(Section::Entry);
    co_await alg.enter(ctx, slot);
    ctx.set_section(Section::Critical);
    // No shared accesses in the critical section (Section 2.2 assumption),
    // but occupancy must span at least one state of the run so that the
    // mutual-exclusion invariant is observable; yield is not counted by any
    // measure.
    co_await ctx.yield();
    ctx.set_section(Section::Exit);
    co_await alg.exit(ctx, slot);
    ctx.set_section(Section::Remainder);
  }
}

std::unique_ptr<MutexAlgorithm> setup_mutex(Sim& sim, const MutexFactory& make,
                                            int n, int sessions) {
  if (sim.process_count() != 0) {
    throw std::invalid_argument("setup_mutex requires an empty sim");
  }
  std::unique_ptr<MutexAlgorithm> alg = make(sim.memory(), n);
  if (alg->capacity() < n) {
    throw std::invalid_argument("mutex capacity below process count");
  }
  sim.check_mutual_exclusion(true);
  for (int slot = 0; slot < n; ++slot) {
    MutexAlgorithm* a = alg.get();
    sim.spawn("m" + std::to_string(slot),
              [a, slot, sessions](ProcessContext& ctx) {
                return mutex_driver(ctx, *a, slot, sessions);
              });
  }
  return alg;
}

}  // namespace cfc
