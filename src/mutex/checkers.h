#ifndef CFC_MUTEX_CHECKERS_H
#define CFC_MUTEX_CHECKERS_H

#include <cstdint>
#include <vector>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Result of a systematic bounded-preemption exploration.
struct ExplorationResult {
  std::uint64_t plans_run = 0;        ///< schedules executed
  std::uint64_t violations = 0;       ///< mutual-exclusion violations seen
  std::uint64_t incomplete_runs = 0;  ///< runs that hit the finish budget
};

/// Systematically explores schedules of the form
///   run p_0 for k_0 accesses, p_1 for k_1, ..., p_m for k_m,
///   then finish fairly (round-robin),
/// over all pid sequences with up to `max_segments` segments (adjacent
/// segments use different pids) and segment lengths 1..`max_segment_len`.
/// The simulator's mutual-exclusion invariant check fires on any state with
/// two processes in their critical sections; violations are counted rather
/// than thrown.
///
/// This is a preemption-bounded model check: empirically, classic mutex
/// races are exposed by schedules with very few context switches, so small
/// bounds give high confidence at polynomial cost.
[[nodiscard]] ExplorationResult explore_bounded_preemption(
    const MutexFactory& make, int n, int sessions, int max_segments,
    int max_segment_len, std::uint64_t finish_budget = 100'000);

/// Liveness under fair scheduling (deadlock freedom, and for these
/// algorithms starvation freedom in practice): every process completes all
/// its sessions under round-robin and under each seeded random schedule.
[[nodiscard]] bool deadlock_free_under_fair_schedules(
    const MutexFactory& make, int n, int sessions,
    const std::vector<std::uint64_t>& seeds,
    std::uint64_t budget = 1'000'000);

/// Runs every process through one contention-free session one after the
/// other and returns true iff all complete (weak deadlock freedom).
[[nodiscard]] bool completes_solo_sessions(const MutexFactory& make, int n,
                                           std::uint64_t budget = 100'000);

/// Result of the exhaustive bounded-depth interleaving enumeration.
struct ExhaustiveResult {
  std::uint64_t completed_runs = 0;  ///< schedules where both finished
  std::uint64_t truncated_runs = 0;  ///< schedules cut off at max_depth
  std::uint64_t violations = 0;      ///< mutual-exclusion violations
};

/// Enumerates EVERY two-process schedule up to `max_depth` scheduler picks
/// (a complete binary tree of interleavings, each replayed from the initial
/// state) and checks the mutual-exclusion invariant along every one.
/// Schedules still running at the depth bound count as truncated — for
/// waiting algorithms (which admit unbounded spins) truncation is
/// unavoidable, but every *reachable prefix* up to the bound is covered,
/// which subsumes the preemption-bounded search at the same depth.
[[nodiscard]] ExhaustiveResult exhaustive_two_process(const MutexFactory& make,
                                                      int sessions,
                                                      int max_depth);

}  // namespace cfc

#endif  // CFC_MUTEX_CHECKERS_H
