#include "mutex/peterson.h"

#include <stdexcept>

#include "core/algorithm_registry.h"

namespace cfc {

namespace {
constexpr RegId kNoAbort = -1;
}  // namespace

Peterson::Peterson(RegisterFile& mem, const std::string& tag) {
  flag_[0] = mem.add_bit(tag + ".flag0");
  flag_[1] = mem.add_bit(tag + ".flag1");
  turn_ = mem.add_bit(tag + ".turn");
}

Task<void> Peterson::enter(ProcessContext& ctx, int slot) {
  co_await try_enter(ctx, slot, kNoAbort);
}

Task<Value> Peterson::try_enter(ProcessContext& ctx, int slot,
                                RegId abort_bit) {
  if (slot < 0 || slot > 1) {
    throw std::invalid_argument("Peterson slot must be 0 or 1");
  }
  const int me = slot;
  const int other = 1 - slot;
  co_await ctx.write(flag_[me], 1);
  co_await ctx.write(turn_, static_cast<Value>(other));
  while (true) {
    const Value other_flag = co_await ctx.read(flag_[other]);
    if (other_flag == 0) {
      break;
    }
    const Value turn_now = co_await ctx.read(turn_);
    if (turn_now == static_cast<Value>(me)) {
      break;
    }
    if (abort_bit != kNoAbort) {
      const Value stop = co_await ctx.read(abort_bit);
      if (stop != 0) {
        co_await ctx.write(flag_[me], 0);
        co_return 0;
      }
    }
  }
  co_return 1;
}

Task<void> Peterson::exit(ProcessContext& ctx, int slot) {
  co_await ctx.write(flag_[slot], 0);
}

MutexFactory Peterson::factory() {
  return [](RegisterFile& mem, int n) {
    if (n > 2) {
      throw std::invalid_argument("Peterson supports at most 2 processes");
    }
    return std::make_unique<Peterson>(mem);
  };
}

namespace {
const MutexRegistrar kPetersonRegistrar{
    AlgorithmInfo::named("peterson-2p")
        .desc("Peterson's two-process algorithm: 4 entry + 1 exit accesses "
              "over 3 bits")
        .capacity_limit(2)
        .tag("two-process")
        .tag("bit"),
    Peterson::factory()};
}  // namespace

}  // namespace cfc
