#include "mutex/tas_lock.h"

#include "core/algorithm_registry.h"

namespace cfc {

namespace {
constexpr RegId kNoAbort = -1;
}  // namespace

TasLock::TasLock(RegisterFile& mem, const std::string& tag) {
  bit_ = mem.add_bit(tag + ".lock");
}

Task<void> TasLock::enter(ProcessContext& ctx, int slot) {
  co_await try_enter(ctx, slot, kNoAbort);
}

Task<Value> TasLock::try_enter(ProcessContext& ctx, int /*slot*/,
                               RegId abort_bit) {
  for (;;) {
    const Value held = co_await ctx.test_and_set(bit_);
    if (held == 0) {
      co_return 1;
    }
    if (abort_bit != kNoAbort) {
      const Value stop = co_await ctx.read(abort_bit);
      if (stop != 0) {
        co_return 0;
      }
    }
  }
}

Task<void> TasLock::exit(ProcessContext& ctx, int /*slot*/) {
  co_await ctx.op(BitOp::Write0, bit_);
}

MutexFactory TasLock::factory() {
  return [](RegisterFile& mem, int /*n*/) {
    return std::make_unique<TasLock>(mem);
  };
}

namespace {
const MutexRegistrar kTasLockRegistrar{
    AlgorithmInfo::named("tas-lock")
        .desc("test-and-set spin lock: the rmw escape hatch below the "
              "paper's register-model lower bounds (cf 2 steps, 1 reg)")
        .tag("rmw"),
    TasLock::factory()};
}  // namespace

}  // namespace cfc
