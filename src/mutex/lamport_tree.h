#ifndef CFC_MUTEX_LAMPORT_TREE_H
#define CFC_MUTEX_LAMPORT_TREE_H

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mutex/lamport_fast.h"
#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Arity policy for the Theorem 3 tree (see DESIGN.md, substitutions).
enum class TreeArity : std::uint8_t {
  /// Node arity 2^l - 1: every register is at most l bits wide, so the
  /// measured atomicity is exactly the advertised l. The depth (and with it
  /// the constants) can exceed ceil(log n / l) slightly for small l.
  ExactAtomicity,
  /// Node arity 2^l, the paper's literal construction: the depth is exactly
  /// ceil(log n / l) and the 7/3 constants match the theorem exactly, but
  /// Lamport's y register must hold 2^l ids plus "empty" and is therefore
  /// l+1 bits wide (the paper glosses this sentinel).
  PaperLiteral,
};

/// Theorem 3: a 2^l-ary tree of Lamport fast-mutex instances. For every
/// 1 <= l <= log n this yields a deadlock-free mutual exclusion algorithm
/// with atomicity ~l, contention-free step complexity 7*ceil(log n / l) and
/// contention-free register complexity 3*ceil(log n / l).
///
/// Process i enters at the leaf group floor(i / k) and climbs; it advances
/// a level each time it wins the Lamport instance it shares with its group,
/// holding the critical section when it wins the root. Exit executes the
/// exit code of every node on the path, leaf to root (the paper's order).
class LamportTree final : public MutexAlgorithm {
 public:
  LamportTree(RegisterFile& mem, int n, int l,
              TreeArity arity_policy = TreeArity::ExactAtomicity,
              const std::string& tag = "lamtree");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return atomicity_; }
  [[nodiscard]] std::string algorithm_name() const override;

  /// Levels a process traverses.
  [[nodiscard]] int depth() const { return depth_; }
  /// Node arity k (2^l or 2^l - 1 depending on the policy).
  [[nodiscard]] int arity() const { return arity_; }

  [[nodiscard]] static MutexFactory factory(int l, TreeArity arity_policy =
                                                       TreeArity::ExactAtomicity);

 private:
  struct PathStep {
    MutexAlgorithm* node = nullptr;
    int local_id = 0;
  };

  [[nodiscard]] std::vector<PathStep> path_of(int slot) const;

  int n_;
  int l_;
  int arity_;
  int depth_;
  int atomicity_ = 1;
  TreeArity policy_;
  std::map<std::pair<int, int>, std::unique_ptr<LamportFast>> nodes_;
};

/// The paper's Theorem 3 algorithm for a requested atomicity l:
///  * l >= 2 — LamportTree with the chosen arity policy;
///  * l == 1 with ExactAtomicity — a Peterson tournament (all bits, 4/3
///    constants, still within Theorem 3's 7/3 bounds);
///  * l == 1 with PaperLiteral — a binary LamportTree (atomicity 2).
[[nodiscard]] MutexFactory theorem3_factory(
    int l, TreeArity arity_policy = TreeArity::ExactAtomicity);

}  // namespace cfc

#endif  // CFC_MUTEX_LAMPORT_TREE_H
