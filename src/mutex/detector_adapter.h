#ifndef CFC_MUTEX_DETECTOR_ADAPTER_H
#define CFC_MUTEX_DETECTOR_ADAPTER_H

#include <memory>
#include <string>

#include "core/contention_detection.h"
#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Lemma 1's reduction, made executable: any mutual exclusion algorithm
/// solves contention detection. A process runs the (abortable) entry code;
/// on entering the critical section it sets a shared `won` bit and outputs
/// 1; a process that observes `won` set while waiting aborts and outputs 0.
///
/// The reduction preserves contention-free complexity up to a constant: the
/// solo winner pays the algorithm's contention-free entry complexity plus
/// one write of `won`. (The paper uses the reduction in the other direction
/// — lower bounds proved for detection transfer to mutual exclusion; this
/// adapter lets the test suite check the two sides against each other.)
class DetectorFromMutex final : public Detector {
 public:
  DetectorFromMutex(RegisterFile& mem, int n, const MutexFactory& make_mutex);

  Task<void> detect(ProcessContext& ctx, int slot) override;
  [[nodiscard]] int capacity() const override { return mutex_->capacity(); }
  [[nodiscard]] int atomicity() const override { return mutex_->atomicity(); }
  [[nodiscard]] std::string algorithm_name() const override {
    return "lemma1(" + mutex_->algorithm_name() + ")";
  }

  [[nodiscard]] static DetectorFactory factory(MutexFactory make_mutex);

 private:
  std::unique_ptr<MutexAlgorithm> mutex_;
  RegId won_ = -1;
};

}  // namespace cfc

#endif  // CFC_MUTEX_DETECTOR_ADAPTER_H
