#include "mutex/checkers.h"

#include <functional>

#include "core/adversary.h"
#include "sched/sched.h"

namespace cfc {

namespace {

/// Runs one bounded-preemption plan; returns true on an ME violation.
bool run_plan(const MutexFactory& make, int n, int sessions,
              const std::vector<std::pair<Pid, int>>& plan,
              std::uint64_t finish_budget, bool& incomplete) {
  Sim sim;
  auto alg = setup_mutex(sim, make, n, sessions);
  try {
    for (const auto& [pid, len] : plan) {
      for (int i = 0; i < len && sim.runnable(pid); ++i) {
        sim.step(pid);
      }
    }
    RoundRobinScheduler rr;
    const RunOutcome out = drive(sim, rr, RunLimits{finish_budget});
    if (out != RunOutcome::AllDone) {
      incomplete = true;
    }
  } catch (const MutualExclusionViolation&) {
    return true;
  }
  return false;
}

void enumerate_plans(int n, int max_segments, int max_segment_len,
                     std::vector<std::pair<Pid, int>>& plan,
                     const std::function<void()>& visit) {
  visit();  // also test the pure round-robin completion (empty prefix)
  if (static_cast<int>(plan.size()) >= max_segments) {
    return;
  }
  const Pid last = plan.empty() ? -1 : plan.back().first;
  for (Pid p = 0; p < n; ++p) {
    if (p == last) {
      continue;  // merging equal adjacent segments is redundant
    }
    for (int len = 1; len <= max_segment_len; ++len) {
      plan.emplace_back(p, len);
      enumerate_plans(n, max_segments, max_segment_len, plan, visit);
      plan.pop_back();
    }
  }
}

}  // namespace

ExplorationResult explore_bounded_preemption(const MutexFactory& make, int n,
                                             int sessions, int max_segments,
                                             int max_segment_len,
                                             std::uint64_t finish_budget) {
  ExplorationResult res;
  std::vector<std::pair<Pid, int>> plan;
  enumerate_plans(n, max_segments, max_segment_len, plan, [&]() {
    bool incomplete = false;
    if (run_plan(make, n, sessions, plan, finish_budget, incomplete)) {
      res.violations += 1;
    }
    if (incomplete) {
      res.incomplete_runs += 1;
    }
    res.plans_run += 1;
  });
  return res;
}

bool deadlock_free_under_fair_schedules(const MutexFactory& make, int n,
                                        int sessions,
                                        const std::vector<std::uint64_t>& seeds,
                                        std::uint64_t budget) {
  {
    Sim sim;
    auto alg = setup_mutex(sim, make, n, sessions);
    RoundRobinScheduler rr;
    if (drive(sim, rr, RunLimits{budget}) != RunOutcome::AllDone) {
      return false;
    }
  }
  for (const std::uint64_t seed : seeds) {
    Sim sim;
    auto alg = setup_mutex(sim, make, n, sessions);
    RandomScheduler rnd(seed);
    if (drive(sim, rnd, RunLimits{budget}) != RunOutcome::AllDone) {
      return false;
    }
  }
  return true;
}

bool completes_solo_sessions(const MutexFactory& make, int n,
                             std::uint64_t budget) {
  Sim sim;
  auto alg = setup_mutex(sim, make, n, 1);
  return run_sequentially(sim, budget);
}

namespace {

/// Depth-first enumeration of all two-process schedules by prefix replay:
/// each tree node replays its pid prefix on a fresh simulation, then
/// branches on every runnable pid. O(nodes * depth) simulator steps.
void exhaustive_dfs(const MutexFactory& make, int sessions, int max_depth,
                    std::vector<Pid>& prefix, ExhaustiveResult& out) {
  Sim sim;
  auto alg = setup_mutex(sim, make, 2, sessions);
  try {
    for (const Pid p : prefix) {
      sim.step(p);
    }
  } catch (const MutualExclusionViolation&) {
    out.violations += 1;
    return;
  }
  if (sim.all_done()) {
    out.completed_runs += 1;
    return;
  }
  if (static_cast<int>(prefix.size()) >= max_depth) {
    out.truncated_runs += 1;
    return;
  }
  for (Pid p = 0; p < 2; ++p) {
    if (!sim.runnable(p)) {
      continue;
    }
    prefix.push_back(p);
    exhaustive_dfs(make, sessions, max_depth, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

ExhaustiveResult exhaustive_two_process(const MutexFactory& make, int sessions,
                                        int max_depth) {
  ExhaustiveResult out;
  std::vector<Pid> prefix;
  exhaustive_dfs(make, sessions, max_depth, prefix, out);
  return out;
}

}  // namespace cfc
