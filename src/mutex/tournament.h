#ifndef CFC_MUTEX_TOURNAMENT_H
#define CFC_MUTEX_TOURNAMENT_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Factory for a two-process node algorithm used inside a tournament tree.
using NodeFactory = std::function<std::unique_ptr<MutexAlgorithm>(
    RegisterFile& mem, const std::string& tag)>;

/// Binary tournament-tree mutual exclusion (Peterson & Fischer [PF77]):
/// a complete binary tree whose internal nodes are independent two-process
/// mutex instances. Process i starts at leaf i and climbs to the root,
/// competing at each node as the representative of its subtree (side = the
/// corresponding bit of i); it holds the critical section when it wins the
/// root. Exit releases the nodes along the path.
///
/// With Kessels nodes this is the paper's O(log n) worst-case register
/// complexity algorithm at atomicity 1 [Kes82]; with Peterson nodes it is
/// the classic [PF77] tournament. Contention-free complexities are
/// depth * (node contention-free complexity), depth = ceil(log2 n).
/// Order in which a process releases its path's nodes on exit.
enum class ReleaseOrder : std::uint8_t {
  /// Reverse acquisition order (safe for any node algorithm; the default).
  RootToLeaf,
  /// The paper's Theorem 3 phrasing. Safe for Lamport nodes (their slow
  /// path re-validates y-ownership) but UNSAFE for Peterson/Kessels nodes:
  /// kept selectable so the test suite can demonstrate the violation.
  LeafToRoot,
};

class TournamentMutex final : public MutexAlgorithm {
 public:
  /// Builds a tree for up to n processes with the given node algorithm.
  TournamentMutex(RegisterFile& mem, int n, const NodeFactory& node_factory,
                  std::string node_kind, const std::string& tag = "tree",
                  ReleaseOrder release_order = ReleaseOrder::RootToLeaf);

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return atomicity_; }
  [[nodiscard]] std::string algorithm_name() const override;

  /// Number of levels a process traverses: ceil(log2(max(n, 2))).
  [[nodiscard]] int depth() const { return depth_; }

  [[nodiscard]] static MutexFactory peterson_tree(
      ReleaseOrder release_order = ReleaseOrder::RootToLeaf);
  [[nodiscard]] static MutexFactory kessels_tree(
      ReleaseOrder release_order = ReleaseOrder::RootToLeaf);

 private:
  /// Heap-indexed internal node (1 = root, children 2v and 2v+1).
  struct PathStep {
    MutexAlgorithm* node = nullptr;
    int side = 0;
  };

  /// The nodes process `slot` plays, bottom-up (deepest first).
  [[nodiscard]] std::vector<PathStep> path_of(int slot) const;

  int n_;
  int depth_;
  int leaves_;
  int atomicity_ = 1;
  std::string node_kind_;
  ReleaseOrder release_order_;
  std::vector<std::unique_ptr<MutexAlgorithm>> nodes_;  // 1..leaves_-1
};

}  // namespace cfc

#endif  // CFC_MUTEX_TOURNAMENT_H
