#ifndef CFC_MUTEX_LAMPORT_PACKED_H
#define CFC_MUTEX_LAMPORT_PACKED_H

#include <string>
#include <vector>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Lamport's fast algorithm with x and y packed into one word, written at
/// sub-word granularity — the [MS93] optimization the paper's Section 1.3
/// describes ("several registers of smaller size can be packed into one
/// word of memory, enabling reads or writes to all or a subset of them in
/// one atomic step").
///
/// Register layout: one word W of width 2*ceil(log2(n+1)) holding
/// (y << w) | x, plus the per-process bits b[i]. Writes to x or y are
/// multi-grain field stores; a single read of W returns both halves
/// atomically.
///
/// Contention-free complexity: still 7 steps (5 entry + 2 exit), but only
/// **2 distinct registers** (b[i] and W) instead of 3 — on a
/// register-complexity (remote-access) architecture the packed variant is
/// strictly better, at the price of doubling the atomicity. The framework
/// measures exactly this trade (see bench/ablation_multigrain).
class LamportPacked final : public MutexAlgorithm {
 public:
  LamportPacked(RegisterFile& mem, int n,
                const std::string& tag = "lampacked");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return 2 * half_width_; }
  [[nodiscard]] std::string algorithm_name() const override;

  [[nodiscard]] static MutexFactory factory();

 private:
  [[nodiscard]] Value x_of(Value word) const;
  [[nodiscard]] Value y_of(Value word) const;

  int n_;
  int half_width_;
  RegId w_ = -1;  // packed (y << half_width_) | x
  std::vector<RegId> b_;
};

}  // namespace cfc

#endif  // CFC_MUTEX_LAMPORT_PACKED_H
