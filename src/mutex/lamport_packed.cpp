#include "mutex/lamport_packed.h"

#include <stdexcept>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

namespace {
constexpr RegId kNoAbort = -1;
}  // namespace

LamportPacked::LamportPacked(RegisterFile& mem, int n, const std::string& tag)
    : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("LamportPacked needs n >= 1");
  }
  half_width_ = bounds::ceil_log2(static_cast<std::uint64_t>(n) + 1);
  if (2 * half_width_ > RegisterFile::kMaxWidth) {
    throw std::invalid_argument("LamportPacked word exceeds 64 bits");
  }
  w_ = mem.add_register(tag + ".xy", 2 * half_width_, 0);
  b_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    b_.push_back(mem.add_bit(tag + ".b" + std::to_string(i)));
  }
}

Value LamportPacked::x_of(Value word) const {
  return word & ((Value{1} << half_width_) - 1);
}

Value LamportPacked::y_of(Value word) const {
  return word >> half_width_;
}

Task<void> LamportPacked::enter(ProcessContext& ctx, int slot) {
  co_await try_enter(ctx, slot, kNoAbort);
}

Task<Value> LamportPacked::try_enter(ProcessContext& ctx, int slot,
                                     RegId abort_bit) {
  const auto id = static_cast<Value>(slot + 1);
  const RegId mine = b_[static_cast<std::size_t>(slot)];
  while (true) {
    co_await ctx.write(mine, 1);
    co_await ctx.write_field(w_, 0, half_width_, id);  // x := id
    {
      const Value word = co_await ctx.read(w_);
      if (y_of(word) != 0) {
        co_await ctx.write(mine, 0);
        for (;;) {  // await y = 0
          const Value now = co_await ctx.read(w_);
          if (y_of(now) == 0) {
            break;
          }
          if (abort_bit != kNoAbort) {
            const Value stop = co_await ctx.read(abort_bit);
            if (stop != 0) {
              co_return 0;
            }
          }
        }
        continue;  // goto start
      }
    }
    co_await ctx.write_field(w_, half_width_, half_width_, id);  // y := id
    {
      const Value word = co_await ctx.read(w_);
      if (x_of(word) != id) {
        co_await ctx.write(mine, 0);
        for (int j = 0; j < n_; ++j) {
          for (;;) {
            const Value bj =
                co_await ctx.read(b_[static_cast<std::size_t>(j)]);
            if (bj == 0) {
              break;
            }
            if (abort_bit != kNoAbort) {
              const Value stop = co_await ctx.read(abort_bit);
              if (stop != 0) {
                co_return 0;
              }
            }
          }
        }
        const Value again = co_await ctx.read(w_);
        if (y_of(again) != id) {
          for (;;) {  // await y = 0
            const Value now = co_await ctx.read(w_);
            if (y_of(now) == 0) {
              break;
            }
            if (abort_bit != kNoAbort) {
              const Value stop = co_await ctx.read(abort_bit);
              if (stop != 0) {
                co_return 0;
              }
            }
          }
          continue;  // goto start
        }
      }
    }
    co_return 1;  // critical section
  }
}

Task<void> LamportPacked::exit(ProcessContext& ctx, int slot) {
  co_await ctx.write_field(w_, half_width_, half_width_, 0);  // y := 0
  co_await ctx.write(b_[static_cast<std::size_t>(slot)], 0);
}

std::string LamportPacked::algorithm_name() const {
  return "lamport-packed(n=" + std::to_string(n_) + ")";
}

MutexFactory LamportPacked::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<LamportPacked>(mem, n);
  };
}

namespace {
const MutexRegistrar kLamportPackedRegistrar{
    AlgorithmInfo::named("lamport-packed")
        .desc("Lamport fast mutex with x and y packed into one word "
              "([MS93] multi-grain): cf registers 3 -> 2 at doubled "
              "atomicity")
        .tag("multigrain")
        .tag("fast"),
    LamportPacked::factory()};
}  // namespace

}  // namespace cfc
