#ifndef CFC_MUTEX_LAMPORT_FAST_H
#define CFC_MUTEX_LAMPORT_FAST_H

#include <string>
#include <vector>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Lamport's fast mutual exclusion algorithm [Lam87], the paper's reference
/// point for contention-free complexity: in the absence of contention a
/// process performs exactly 5 entry accesses and 2 exit accesses, over 3
/// distinct registers (b[i], x, y).
///
/// Registers: x and y of width ceil(log2(n+1)) holding process ids 1..n
/// (0 = "empty" in y), plus one boolean b[i] per process. Atomicity is
/// therefore ceil(log2(n+1)).
///
/// Entry (process i):                  Exit (process i):
///   start: b[i] := true                 y := 0
///     x := i                            b[i] := false
///     if y != 0 { b[i] := false;
///       await y = 0; goto start }
///     y := i
///     if x != i {
///       b[i] := false
///       for j in 1..n: await !b[j]
///       if y != i { await y = 0; goto start } }
///   (critical section)
///
/// The worst-case step complexity is unbounded ([AT92]; see the scripted
/// adversary in the tests, which drives the eventual winner through
/// arbitrarily many steps while no process is in its critical section).
class LamportFast final : public MutexAlgorithm {
 public:
  /// Allocates registers for up to n >= 1 processes. `tag` prefixes register
  /// names (tree algorithms instantiate many copies).
  LamportFast(RegisterFile& mem, int n, const std::string& tag = "lamport");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return width_; }
  [[nodiscard]] std::string algorithm_name() const override;

  [[nodiscard]] static MutexFactory factory();

 private:
  int n_;
  int width_;
  RegId x_ = -1;
  RegId y_ = -1;
  std::vector<RegId> b_;
};

}  // namespace cfc

#endif  // CFC_MUTEX_LAMPORT_FAST_H
