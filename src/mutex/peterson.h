#ifndef CFC_MUTEX_PETERSON_H
#define CFC_MUTEX_PETERSON_H

#include <string>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Peterson's two-process mutual exclusion algorithm over three shared bits
/// (flag[0], flag[1], turn) — atomicity 1. In the absence of contention a
/// process performs 3 entry accesses and 1 exit access over 3 registers.
///
/// Entry (process i, j = 1-i):        Exit (process i):
///   flag[i] := 1                       flag[i] := 0
///   turn := j
///   await (flag[j] = 0 or turn = i)
///
/// `turn` is a multi-writer bit; contrast with Kessels' algorithm, which
/// achieves the same interface with single-writer bits only.
class Peterson final : public MutexAlgorithm {
 public:
  explicit Peterson(RegisterFile& mem, const std::string& tag = "peterson");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return 2; }
  [[nodiscard]] int atomicity() const override { return 1; }
  [[nodiscard]] std::string algorithm_name() const override {
    return "peterson-2p";
  }

  /// For use as a tournament-tree node.
  [[nodiscard]] static MutexFactory factory();

 private:
  RegId flag_[2] = {-1, -1};
  RegId turn_ = -1;
};

}  // namespace cfc

#endif  // CFC_MUTEX_PETERSON_H
