#include "mutex/detector_adapter.h"

namespace cfc {

DetectorFromMutex::DetectorFromMutex(RegisterFile& mem, int n,
                                     const MutexFactory& make_mutex) {
  mutex_ = make_mutex(mem, n);
  won_ = mem.add_bit("lemma1.won");
}

Task<void> DetectorFromMutex::detect(ProcessContext& ctx, int slot) {
  const Value entered = co_await mutex_->try_enter(ctx, slot, won_);
  if (entered == 0) {
    ctx.set_output(0);
    co_return;
  }
  // Single-shot: the winner keeps the critical section forever, so the exit
  // code is never run and `won` stays set.
  co_await ctx.write(won_, 1);
  ctx.set_output(1);
}

DetectorFactory DetectorFromMutex::factory(MutexFactory make_mutex) {
  return [make_mutex](RegisterFile& mem, int n) {
    return std::make_unique<DetectorFromMutex>(mem, n, make_mutex);
  };
}

}  // namespace cfc
