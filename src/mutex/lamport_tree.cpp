#include "mutex/lamport_tree.h"

#include <algorithm>
#include <stdexcept>

#include "mutex/tournament.h"

#include "core/algorithm_registry.h"

namespace cfc {

LamportTree::LamportTree(RegisterFile& mem, int n, int l,
                         TreeArity arity_policy, const std::string& tag)
    : n_(n), l_(l), policy_(arity_policy) {
  if (n < 1) {
    throw std::invalid_argument("LamportTree needs n >= 1");
  }
  if (l < 1 || l > 30) {
    throw std::invalid_argument("LamportTree atomicity out of range");
  }
  arity_ = (policy_ == TreeArity::PaperLiteral) ? (1 << l) : ((1 << l) - 1);
  if (arity_ < 2) {
    throw std::invalid_argument(
        "LamportTree arity below 2; use theorem3_factory for l = 1");
  }
  // Depth: smallest D with arity^D >= max(n, 2).
  depth_ = 0;
  std::uint64_t span = 1;
  while (span < static_cast<std::uint64_t>(std::max(n_, 2))) {
    span *= static_cast<std::uint64_t>(arity_);
    depth_ += 1;
  }
  // Allocate the nodes on any process's path: node (level, group).
  for (int slot = 0; slot < n_; ++slot) {
    int contender = slot;
    for (int level = 0; level < depth_; ++level) {
      const int group = contender / arity_;
      const auto key = std::make_pair(level, group);
      if (nodes_.count(key) == 0) {
        const std::string node_tag = tag + ".L" + std::to_string(level) +
                                     "." + std::to_string(group);
        nodes_.emplace(key,
                       std::make_unique<LamportFast>(mem, arity_, node_tag));
      }
      contender = group;
    }
  }
  for (const auto& [key, node] : nodes_) {
    atomicity_ = std::max(atomicity_, node->atomicity());
  }
}

std::vector<LamportTree::PathStep> LamportTree::path_of(int slot) const {
  if (slot < 0 || slot >= n_) {
    throw std::invalid_argument("LamportTree slot out of range");
  }
  std::vector<PathStep> path;
  path.reserve(static_cast<std::size_t>(depth_));
  int contender = slot;
  for (int level = 0; level < depth_; ++level) {
    const int group = contender / arity_;
    PathStep step;
    step.node = nodes_.at({level, group}).get();
    step.local_id = contender % arity_;
    path.push_back(step);
    contender = group;
  }
  return path;
}

Task<void> LamportTree::enter(ProcessContext& ctx, int slot) {
  for (const PathStep& step : path_of(slot)) {
    co_await step.node->enter(ctx, step.local_id);
  }
}

Task<Value> LamportTree::try_enter(ProcessContext& ctx, int slot,
                                   RegId abort_bit) {
  const std::vector<PathStep> path = path_of(slot);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Value ok =
        co_await path[i].node->try_enter(ctx, path[i].local_id, abort_bit);
    if (ok == 0) {
      for (std::size_t j = i; j > 0; --j) {
        co_await path[j - 1].node->exit(ctx, path[j - 1].local_id);
      }
      co_return 0;
    }
  }
  co_return 1;
}

Task<void> LamportTree::exit(ProcessContext& ctx, int slot) {
  // Leaf-to-root release order, per Theorem 3's proof.
  for (const PathStep& step : path_of(slot)) {
    co_await step.node->exit(ctx, step.local_id);
  }
}

std::string LamportTree::algorithm_name() const {
  const char* mode =
      (policy_ == TreeArity::PaperLiteral) ? "paper" : "exact-l";
  return "lamport-tree(l=" + std::to_string(l_) + "," + mode + ")";
}

MutexFactory LamportTree::factory(int l, TreeArity arity_policy) {
  return [l, arity_policy](RegisterFile& mem, int n) {
    return std::make_unique<LamportTree>(mem, n, l, arity_policy);
  };
}

MutexFactory theorem3_factory(int l, TreeArity arity_policy) {
  if (l < 1) {
    throw std::invalid_argument("atomicity must be >= 1");
  }
  if (l == 1 && arity_policy == TreeArity::ExactAtomicity) {
    // A bits-only binary tournament: 4 entry+exit accesses and 3 registers
    // per level, within Theorem 3's 7/3 bounds at atomicity exactly 1.
    return TournamentMutex::peterson_tree();
  }
  return LamportTree::factory(l, arity_policy);
}

namespace {
/// Registers the Theorem 3 family at every atomicity 1 <= l <= 8, in both
/// arity policies, so benches can enumerate the (l, policy) grid from the
/// registry instead of hard-coding it.
const struct Theorem3Registrar {
  Theorem3Registrar() {
    for (int l = 1; l <= 8; ++l) {
      AlgorithmRegistry::instance().add_mutex(
          AlgorithmInfo::named("thm3-paper-l" + std::to_string(l))
              .desc("Theorem 3 tree, paper-literal arity 2^l at l=" +
                    std::to_string(l) +
                    ": cf complexity exactly 7/3 * ceil(log n / l)")
              .atomicity(l)
              .tag("thm3")
              .tag("thm3-paper"),
          theorem3_factory(l, TreeArity::PaperLiteral));
      AlgorithmRegistry::instance().add_mutex(
          AlgorithmInfo::named("thm3-exact-l" + std::to_string(l))
              .desc("Theorem 3 tree, arity 2^l - 1 at l=" +
                    std::to_string(l) + ": measured atomicity exactly l")
              .atomicity(l)
              .tag("thm3")
              .tag("thm3-exact"),
          theorem3_factory(l, TreeArity::ExactAtomicity));
    }
  }
} kTheorem3Registrar;
}  // namespace

}  // namespace cfc
