#ifndef CFC_MUTEX_MUTEX_ALGORITHM_H
#define CFC_MUTEX_MUTEX_ALGORITHM_H

#include <functional>
#include <memory>
#include <string>

#include "memory/register_file.h"
#include "sched/sim.h"
#include "sched/task.h"

namespace cfc {

/// A mutual exclusion algorithm in the atomic-register model (Section 2.1):
/// entry code and exit code per process. The framework driver wraps these
/// with the Remainder/Entry/Critical/Exit section bookkeeping the complexity
/// measures are defined over. Algorithms allocate their registers in the
/// constructor and must only Read/Write them (one register per atomic step);
/// tests enforce this with AccessPolicy::RegistersOnly. (TasLock is the
/// deliberate exception — it exists to show the paper's lower bounds are
/// specific to atomic registers and fall to stronger primitives.)
class MutexAlgorithm {
 public:
  virtual ~MutexAlgorithm() = default;

  /// Entry code for the process occupying `slot` (0-based, < capacity()).
  /// Completes exactly when the process may enter its critical section.
  virtual Task<void> enter(ProcessContext& ctx, int slot) = 0;

  /// Exit code; completes when the process is back in its remainder region.
  virtual Task<void> exit(ProcessContext& ctx, int slot) = 0;

  /// Abortable entry code (used by the Lemma 1 detector adapter): behaves
  /// like `enter`, except that whenever the algorithm would busy-wait it
  /// also reads `abort_bit` and gives up (restoring its registers to
  /// non-blocking values) if the bit is set. Returns 1 on success (the
  /// caller is in its critical section) and 0 on abort.
  ///
  /// A contention-free (solo) invocation never waits, so it never reads
  /// `abort_bit`: aborts cost nothing in the contention-free measures.
  virtual Task<Value> try_enter(ProcessContext& ctx, int slot,
                                RegId abort_bit) = 0;

  /// Maximum number of processes supported.
  [[nodiscard]] virtual int capacity() const = 0;

  /// Declared atomicity l: width of the widest register the algorithm
  /// accesses (verified against the trace in tests).
  [[nodiscard]] virtual int atomicity() const = 0;

  [[nodiscard]] virtual std::string algorithm_name() const = 0;
};

/// Factory: allocates the algorithm's registers in `mem` for n processes.
using MutexFactory =
    std::function<std::unique_ptr<MutexAlgorithm>(RegisterFile& mem, int n)>;

/// Standard per-process driver: `sessions` rounds of
/// remainder -> entry -> critical -> exit -> remainder.
/// Matching the paper's formal model, the process performs no shared-memory
/// steps inside its critical section.
Task<void> mutex_driver(ProcessContext& ctx, MutexAlgorithm& alg, int slot,
                        int sessions);

/// Spawns n driver processes into an empty sim and returns the algorithm
/// instance (which owns the registers' layout; keep it alive while running).
/// Enables the simulator's mutual-exclusion invariant check.
std::unique_ptr<MutexAlgorithm> setup_mutex(Sim& sim, const MutexFactory& make,
                                            int n, int sessions);

}  // namespace cfc

#endif  // CFC_MUTEX_MUTEX_ALGORITHM_H
