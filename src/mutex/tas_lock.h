#ifndef CFC_MUTEX_TAS_LOCK_H
#define CFC_MUTEX_TAS_LOCK_H

#include <string>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Test-and-set spinlock: a one-bit read-modify-write lock.
///
/// This is *not* an atomic-register algorithm — it exists as the contrast
/// case: Theorems 1 and 2 lower-bound contention-free complexity only for
/// algorithms restricted to atomic read/write registers. With a single rmw
/// bit the contention-free step complexity is 2 (one test-and-set to enter,
/// one write to exit) and the register complexity is 1, for any n —
/// demonstrating that the bounds separate the computational power of the
/// primitives rather than the problem alone.
class TasLock final : public MutexAlgorithm {
 public:
  explicit TasLock(RegisterFile& mem, const std::string& tag = "taslock");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return 1 << 30; }
  [[nodiscard]] int atomicity() const override { return 1; }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tas-lock";
  }

  [[nodiscard]] static MutexFactory factory();

 private:
  RegId bit_ = -1;
};

}  // namespace cfc

#endif  // CFC_MUTEX_TAS_LOCK_H
