#ifndef CFC_MUTEX_KESSELS_H
#define CFC_MUTEX_KESSELS_H

#include <string>

#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Kessels' two-process arbiter [Kes82]: mutual exclusion without common
/// modifiable variables — every shared bit has a single writer. The paper
/// cites the tournament of these arbiters as the O(log n) worst-case
/// register complexity algorithm at atomicity 1.
///
/// Shared bits: b0, b1 (intent flags) and t0, t1 (a "turn" split across the
/// two processes; the logical turn is t0 XOR t1).
///
/// Entry (process 0):                 Entry (process 1):
///   b0 := 1                            b1 := 1
///   local v := t1                      local v := t0
///   t0 := v        (turn := P1)        t1 := 1 - v     (turn := P0)
///   await (b1 = 0 or t1 != t0)         await (b0 = 0 or t0 = t1)
///
/// Exit (process i): bi := 0.
///
/// Contention-free: 4 entry accesses + 1 exit access, 4 distinct registers.
class Kessels final : public MutexAlgorithm {
 public:
  explicit Kessels(RegisterFile& mem, const std::string& tag = "kessels");

  Task<void> enter(ProcessContext& ctx, int slot) override;
  Task<void> exit(ProcessContext& ctx, int slot) override;
  Task<Value> try_enter(ProcessContext& ctx, int slot,
                        RegId abort_bit) override;

  [[nodiscard]] int capacity() const override { return 2; }
  [[nodiscard]] int atomicity() const override { return 1; }
  [[nodiscard]] std::string algorithm_name() const override {
    return "kessels-2p";
  }

  [[nodiscard]] static MutexFactory factory();

 private:
  RegId b_[2] = {-1, -1};
  RegId t_[2] = {-1, -1};
};

}  // namespace cfc

#endif  // CFC_MUTEX_KESSELS_H
