#include "mutex/kessels.h"

#include <stdexcept>

#include "core/algorithm_registry.h"

namespace cfc {

namespace {
constexpr RegId kNoAbort = -1;
}  // namespace

Kessels::Kessels(RegisterFile& mem, const std::string& tag) {
  b_[0] = mem.add_bit(tag + ".b0");
  b_[1] = mem.add_bit(tag + ".b1");
  t_[0] = mem.add_bit(tag + ".t0");
  t_[1] = mem.add_bit(tag + ".t1");
}

Task<void> Kessels::enter(ProcessContext& ctx, int slot) {
  co_await try_enter(ctx, slot, kNoAbort);
}

Task<Value> Kessels::try_enter(ProcessContext& ctx, int slot,
                               RegId abort_bit) {
  if (slot < 0 || slot > 1) {
    throw std::invalid_argument("Kessels slot must be 0 or 1");
  }
  const int me = slot;
  const int other = 1 - slot;
  co_await ctx.write(b_[me], 1);
  const Value v = co_await ctx.read(t_[other]);
  // Process 0 makes t0 = t1 (logical turn -> P1); process 1 makes
  // t1 = 1 - t0 (logical turn -> P0). Each writes only its own bit.
  const Value mine = (me == 0) ? v : (1 - v);
  co_await ctx.write(t_[me], mine);
  while (true) {
    const Value other_busy = co_await ctx.read(b_[other]);
    if (other_busy == 0) {
      break;
    }
    const Value theirs = co_await ctx.read(t_[other]);
    // P0 proceeds when t0 != t1; P1 proceeds when t0 == t1.
    const bool my_turn = (me == 0) ? (theirs != mine) : (theirs == mine);
    if (my_turn) {
      break;
    }
    if (abort_bit != kNoAbort) {
      const Value stop = co_await ctx.read(abort_bit);
      if (stop != 0) {
        co_await ctx.write(b_[me], 0);
        co_return 0;
      }
    }
  }
  co_return 1;
}

Task<void> Kessels::exit(ProcessContext& ctx, int slot) {
  co_await ctx.write(b_[slot], 0);
}

MutexFactory Kessels::factory() {
  return [](RegisterFile& mem, int n) {
    if (n > 2) {
      throw std::invalid_argument("Kessels supports at most 2 processes");
    }
    return std::make_unique<Kessels>(mem);
  };
}

namespace {
const MutexRegistrar kKesselsRegistrar{
    AlgorithmInfo::named("kessels-2p")
        .desc("Kessels' two-process arbiter [Kes82]: single-writer bits, "
              "4 entry + 1 exit accesses")
        .capacity_limit(2)
        .tag("two-process")
        .tag("bit"),
    Kessels::factory()};
}  // namespace

}  // namespace cfc
