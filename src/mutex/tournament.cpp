#include "mutex/tournament.h"

#include <algorithm>
#include <stdexcept>

#include "mutex/kessels.h"
#include "mutex/peterson.h"

#include "core/algorithm_registry.h"

namespace cfc {

TournamentMutex::TournamentMutex(RegisterFile& mem, int n,
                                 const NodeFactory& node_factory,
                                 std::string node_kind, const std::string& tag,
                                 ReleaseOrder release_order)
    : n_(n), node_kind_(std::move(node_kind)), release_order_(release_order) {
  if (n < 1) {
    throw std::invalid_argument("TournamentMutex needs n >= 1");
  }
  leaves_ = 1;
  depth_ = 0;
  while (leaves_ < std::max(n, 2)) {
    leaves_ *= 2;
    depth_ += 1;
  }
  // Heap layout: internal nodes 1..leaves_-1; index 0 unused.
  nodes_.resize(static_cast<std::size_t>(leaves_));
  for (int v = 1; v < leaves_; ++v) {
    nodes_[static_cast<std::size_t>(v)] =
        node_factory(mem, tag + ".n" + std::to_string(v));
    atomicity_ = std::max(atomicity_,
                          nodes_[static_cast<std::size_t>(v)]->atomicity());
  }
}

std::vector<TournamentMutex::PathStep> TournamentMutex::path_of(
    int slot) const {
  if (slot < 0 || slot >= n_) {
    throw std::invalid_argument("tournament slot out of range");
  }
  std::vector<PathStep> path;
  path.reserve(static_cast<std::size_t>(depth_));
  int v = leaves_ + slot;  // leaf in heap coordinates
  while (v > 1) {
    PathStep step;
    step.side = v & 1;
    step.node = nodes_[static_cast<std::size_t>(v / 2)].get();
    path.push_back(step);
    v /= 2;
  }
  return path;
}

Task<void> TournamentMutex::enter(ProcessContext& ctx, int slot) {
  // Climb leaf -> root, acquiring each node as this subtree's champion.
  for (const PathStep& step : path_of(slot)) {
    co_await step.node->enter(ctx, step.side);
  }
}

Task<Value> TournamentMutex::try_enter(ProcessContext& ctx, int slot,
                                       RegId abort_bit) {
  const std::vector<PathStep> path = path_of(slot);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Value ok = co_await path[i].node->try_enter(ctx, path[i].side,
                                                      abort_bit);
    if (ok == 0) {
      // Back out of the nodes already held, deepest-release-last.
      for (std::size_t j = i; j > 0; --j) {
        co_await path[j - 1].node->exit(ctx, path[j - 1].side);
      }
      co_return 0;
    }
  }
  co_return 1;
}

Task<void> TournamentMutex::exit(ProcessContext& ctx, int slot) {
  // Release root -> leaf (reverse acquisition order). The paper's Theorem 3
  // phrasing ("execute the exit code in all the nodes in its path from the
  // leaf to the root") is safe for *Lamport* nodes, whose slow path
  // re-validates ownership of y, but it is UNSAFE for Peterson/Kessels
  // nodes: once the leaf node is released, a same-subtree successor can
  // reach an upper node and raise the shared side's intent flag, which the
  // exiting process's later release of that node then erases — admitting
  // two winners. The bounded-preemption explorer in the test suite finds
  // this violation reliably; see also the regression test
  // TournamentExitOrder.LeafToRootIsUnsafeForPetersonNodes.
  const std::vector<PathStep> path = path_of(slot);
  if (release_order_ == ReleaseOrder::LeafToRoot) {
    for (const PathStep& step : path) {
      co_await step.node->exit(ctx, step.side);
    }
    co_return;
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    co_await it->node->exit(ctx, it->side);
  }
}

std::string TournamentMutex::algorithm_name() const {
  return "tournament-" + node_kind_ + "(n=" + std::to_string(n_) + ")";
}

MutexFactory TournamentMutex::peterson_tree(ReleaseOrder release_order) {
  return [release_order](RegisterFile& mem, int n) {
    NodeFactory node = [](RegisterFile& m, const std::string& tag) {
      return std::make_unique<Peterson>(m, tag);
    };
    return std::make_unique<TournamentMutex>(mem, n, node, "peterson", "tree",
                                             release_order);
  };
}

MutexFactory TournamentMutex::kessels_tree(ReleaseOrder release_order) {
  return [release_order](RegisterFile& mem, int n) {
    NodeFactory node = [](RegisterFile& m, const std::string& tag) {
      return std::make_unique<Kessels>(m, tag);
    };
    return std::make_unique<TournamentMutex>(mem, n, node, "kessels", "tree",
                                             release_order);
  };
}

namespace {
const MutexRegistrar kPetersonTreeRegistrar{
    AlgorithmInfo::named("peterson-tree")
        .desc("binary tournament of Peterson nodes [PF77]: atomicity 1, "
              "4/3 contention-free constants per level")
        .tag("tournament")
        .tag("bit"),
    TournamentMutex::peterson_tree()};
const MutexRegistrar kKesselsTreeRegistrar{
    AlgorithmInfo::named("kessels-tree")
        .desc("binary tournament of Kessels arbiters [Kes82]: the paper's "
              "O(log n) worst-case register row at atomicity 1")
        .tag("tournament")
        .tag("bit"),
    TournamentMutex::kessels_tree()};
}  // namespace

}  // namespace cfc
