#include "mutex/lamport_fast.h"

#include <stdexcept>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

namespace {
/// Sentinel: no abort bit, never give up (plain enter()).
constexpr RegId kNoAbort = -1;
}  // namespace

LamportFast::LamportFast(RegisterFile& mem, int n, const std::string& tag)
    : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("LamportFast needs n >= 1");
  }
  // x and y hold ids 1..n; y additionally holds 0 = empty.
  width_ = bounds::ceil_log2(static_cast<std::uint64_t>(n) + 1);
  x_ = mem.add_register(tag + ".x", width_);
  y_ = mem.add_register(tag + ".y", width_, 0);
  b_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    b_.push_back(mem.add_bit(tag + ".b" + std::to_string(i)));
  }
}

Task<void> LamportFast::enter(ProcessContext& ctx, int slot) {
  co_await try_enter(ctx, slot, kNoAbort);
}

Task<Value> LamportFast::try_enter(ProcessContext& ctx, int slot,
                                   RegId abort_bit) {
  // NOTE: busy-wait loops hoist the co_await out of the loop condition
  // (`for(;;) { v = co_await ...; if (...) break; }`) — GCC 12 miscompiles
  // `while (co_await ...)`; see the ToolchainGuard test.
  const auto id = static_cast<Value>(slot + 1);
  const RegId mine = b_[static_cast<std::size_t>(slot)];
  while (true) {
    co_await ctx.write(mine, 1);
    co_await ctx.write(x_, id);
    const Value y_seen = co_await ctx.read(y_);
    if (y_seen != 0) {
      co_await ctx.write(mine, 0);
      for (;;) {  // await y = 0
        const Value y_now = co_await ctx.read(y_);
        if (y_now == 0) {
          break;
        }
        if (abort_bit != kNoAbort) {
          const Value stop = co_await ctx.read(abort_bit);
          if (stop != 0) {
            co_return 0;
          }
        }
      }
      continue;  // goto start
    }
    co_await ctx.write(y_, id);
    const Value x_seen = co_await ctx.read(x_);
    if (x_seen != id) {
      co_await ctx.write(mine, 0);
      // The slow path: wait for every b[j] to clear, then check ownership.
      for (int j = 0; j < n_; ++j) {
        for (;;) {
          const Value bj = co_await ctx.read(b_[static_cast<std::size_t>(j)]);
          if (bj == 0) {
            break;
          }
          if (abort_bit != kNoAbort) {
            const Value stop = co_await ctx.read(abort_bit);
            if (stop != 0) {
              co_return 0;
            }
          }
        }
      }
      const Value y_owner = co_await ctx.read(y_);
      if (y_owner != id) {
        for (;;) {  // await y = 0
          const Value y_now = co_await ctx.read(y_);
          if (y_now == 0) {
            break;
          }
          if (abort_bit != kNoAbort) {
            const Value stop = co_await ctx.read(abort_bit);
            if (stop != 0) {
              co_return 0;
            }
          }
        }
        continue;  // goto start
      }
    }
    co_return 1;  // critical section
  }
}

Task<void> LamportFast::exit(ProcessContext& ctx, int slot) {
  co_await ctx.write(y_, 0);
  co_await ctx.write(b_[static_cast<std::size_t>(slot)], 0);
}

std::string LamportFast::algorithm_name() const {
  return "lamport-fast(n=" + std::to_string(n_) + ")";
}

MutexFactory LamportFast::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<LamportFast>(mem, n);
  };
}

namespace {
const MutexRegistrar kLamportFastRegistrar{
    AlgorithmInfo::named("lamport-fast")
        .desc("Lamport's fast mutual exclusion [Lam87]: constant 7/3 "
              "contention-free complexity at atomicity ~log n")
        .tag("paper")
        .tag("fast"),
    LamportFast::factory()};
}  // namespace

}  // namespace cfc
