#ifndef CFC_OBS_METRICS_H
#define CFC_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cfc::obs {

/// The one enumeration every live counter flows through: the explorer's
/// hot-path flushes, the Campaign's cell accounting, and the progress
/// reporter all speak Metric — adding a counter here makes it visible to
/// the heartbeat (and to anything else snapshotting the registry) without
/// touching the intermediate layers. Counters are monotonic sums over
/// per-shard cells; gauges are last-write point-in-time values.
///
/// X-macro: X(enumerator, "json_name", kind).
#define CFC_OBS_METRICS(X)                       \
  X(states_visited, "states_visited", Counter)   \
  X(cells_total, "cells_total", Gauge)           \
  X(cells_done, "cells_done", Counter)           \
  X(cache_hits, "cache_hits", Counter)           \
  X(sleep_blocked, "sleep_blocked", Counter)     \
  X(races_detected, "races_detected", Counter)   \
  X(backtrack_points, "backtrack_points", Counter) \
  X(restore_marks, "restore_marks", Counter)     \
  X(work_items, "work_items", Counter)           \
  X(steals, "steals", Counter)                   \
  X(restores, "restores", Counter)               \
  X(visited_live_bytes, "visited_live_bytes", Gauge) \
  X(slab_bytes, "slab_bytes", Gauge)

enum class Metric : std::uint32_t {
#define CFC_OBS_METRIC_ENUM(id, name, kind) id,
  CFC_OBS_METRICS(CFC_OBS_METRIC_ENUM)
#undef CFC_OBS_METRIC_ENUM
      kCount
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kCount);

enum class MetricKind : std::uint8_t { Counter, Gauge };

struct MetricDesc {
  const char* name;
  MetricKind kind;
};

[[nodiscard]] const MetricDesc& metric_desc(Metric m);

/// Process-wide registry of live counters, sharded per thread so hot-path
/// increments never contend on one cache line. Disabled (the default) it
/// costs one relaxed load per flush attempt; instrumented code gates on
/// enabled() before doing any accounting work.
///
/// Determinism: counters are summed over shards with unsigned 64-bit
/// wraparound arithmetic, so a snapshot's totals are independent of which
/// thread contributed what. The registry feeds the *progress reporter
/// only* — study/bench JSON values never read it — so enabling it cannot
/// change any canonical output.
class MetricRegistry {
 public:
  MetricRegistry();

  static MetricRegistry& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Counter increment (relaxed, on the calling thread's shard).
  void add(Metric m, std::uint64_t delta);

  /// Gauge write (last write wins; one slot, not sharded).
  void set(Metric m, std::uint64_t value);

  /// Gauge max-update: keeps the largest value seen (for high-water marks
  /// written concurrently by several workers).
  void set_max(Metric m, std::uint64_t value);

  struct Snapshot {
    std::array<std::uint64_t, kMetricCount> values{};

    [[nodiscard]] std::uint64_t value(Metric m) const {
      return values[static_cast<std::size_t>(m)];
    }
  };

  /// Shard-summed counters + gauge values, readable at any time.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every shard and gauge (test/setup helper; racy against
  /// concurrent writers only in the trivial lost-update sense).
  void reset();

  static constexpr std::size_t kShards = 32;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMetricCount> v{};
  };

  [[nodiscard]] Shard& my_shard();

  std::array<Shard, kShards> shards_;
  std::array<std::atomic<std::uint64_t>, kMetricCount> gauges_{};
  std::atomic<bool> enabled_{false};
};

}  // namespace cfc::obs

#endif  // CFC_OBS_METRICS_H
