#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "core/json.h"

namespace cfc::obs {

std::atomic<Tracer*> Tracer::active_{nullptr};
std::mutex Tracer::lifecycle_mu_;
std::string Tracer::path_;

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::start(std::string path) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  Tracer* old = active_.exchange(nullptr, std::memory_order_acq_rel);
  delete old;  // discard an abandoned recording
  path_ = std::move(path);
  active_.store(new Tracer(), std::memory_order_release);
}

bool Tracer::stop() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  Tracer* tracer = active_.exchange(nullptr, std::memory_order_acq_rel);
  if (tracer == nullptr) {
    return false;
  }
  const bool ok = tracer->write(path_);
  delete tracer;
  return ok;
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  // Per-thread cache keyed on the owning tracer's generation (never its
  // address — see generation_), so buffers registered under an earlier
  // recording are never written into by mistake.
  struct Cache {
    std::uint64_t generation = 0;
    ThreadBuffer* buf = nullptr;
  };
  thread_local Cache cache;
  if (cache.generation != generation_) {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    cache.generation = generation_;
    cache.buf = buffers_.back().get();
  }
  return *cache.buf;
}

void Tracer::record(const char* name, const char* cat,
                    std::chrono::steady_clock::time_point begin,
                    std::chrono::steady_clock::time_point end) {
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 begin - epoch_)
                 .count();
  ev.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count();
  if (ev.ts_us < 0) {
    ev.ts_us = 0;  // span began before start(): clamp rather than confuse
  }
  if (ev.dur_us < 0) {
    ev.dur_us = 0;
  }
  buffer_for_this_thread().events.push_back(ev);
}

bool Tracer::write(const std::string& path) {
  // stop() holds the lifecycle lock and has already unpublished `this`,
  // but spans constructed before the unpublish may still be live; take the
  // registration lock so their buffer lookups cannot race the write. (A
  // span destructing mid-write can still lose its event — acceptable for
  // a flight recorder being torn down.)
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[256];
  for (std::size_t t = 0; t < buffers_.size(); ++t) {
    for (const Event& ev : buffers_[t]->events) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                    "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %zu}",
                    first ? "" : ",", ev.name, ev.cat,
                    static_cast<long long>(ev.ts_us),
                    static_cast<long long>(ev.dur_us), t + 1);
      out += buf;
      first = false;
    }
  }
  out += "\n]}\n";
  if (std::FILE* fp = std::fopen(path.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), fp);
    std::fclose(fp);
    return true;
  }
  std::fprintf(stderr, "cfc: could not write trace file %s\n", path.c_str());
  return false;
}

bool check_trace_json(const std::string& payload,
                      std::vector<std::string>* errors) {
  const auto note = [&](std::string msg) {
    if (errors != nullptr) {
      errors->push_back(std::move(msg));
    }
  };
  json::Node root;
  try {
    root = json::parse(payload);
  } catch (const std::invalid_argument& e) {
    note(std::string("not valid JSON: ") + e.what());
    return false;
  }
  if (!root.is_object()) {
    note("top level is not an object");
    return false;
  }
  const json::Node* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    note("missing traceEvents array");
    return false;
  }

  struct Span {
    std::int64_t ts;
    std::int64_t end;
  };
  std::map<std::int64_t, std::vector<Span>> by_tid;
  bool ok = true;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Node& ev = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (!ev.is_object()) {
      note(at + ": not an object");
      ok = false;
      continue;
    }
    try {
      if (json::to_string_field(json::member(ev, "ph")) != "X") {
        note(at + ": ph is not \"X\"");
        ok = false;
        continue;
      }
      if (json::to_string_field(json::member(ev, "name")).empty()) {
        note(at + ": empty name");
        ok = false;
      }
      const std::int64_t ts =
          static_cast<std::int64_t>(json::to_u64(json::member(ev, "ts")));
      const std::int64_t dur =
          static_cast<std::int64_t>(json::to_u64(json::member(ev, "dur")));
      const auto tid =
          static_cast<std::int64_t>(json::to_u64(json::member(ev, "tid")));
      (void)json::to_u64(json::member(ev, "pid"));
      if (dur < 0) {
        note(at + ": negative dur");
        ok = false;
        continue;
      }
      by_tid[tid].push_back(Span{ts, ts + dur});
    } catch (const std::invalid_argument& e) {
      note(at + ": " + e.what());
      ok = false;
    }
  }

  // Balanced spans: within a thread, spans sorted by start (ties: longer
  // first, i.e. parent before child) must strictly nest — an event that
  // starts inside the innermost open span must also end inside it.
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.end > b.end;
    });
    std::vector<std::int64_t> open;  // stack of enclosing end times
    for (const Span& s : spans) {
      while (!open.empty() && open.back() <= s.ts) {
        open.pop_back();
      }
      if (!open.empty() && s.end > open.back()) {
        note("tid " + std::to_string(tid) + ": span [" +
             std::to_string(s.ts) + ", " + std::to_string(s.end) +
             ") partially overlaps an enclosing span ending at " +
             std::to_string(open.back()));
        ok = false;
        continue;
      }
      open.push_back(s.end);
    }
  }
  return ok;
}

}  // namespace cfc::obs
