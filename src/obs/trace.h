#ifndef CFC_OBS_TRACE_H
#define CFC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cfc::obs {

/// Scoped-span flight recorder writing the Chrome trace-event JSON format
/// ({"traceEvents": [...]} with ph:"X" complete events, microsecond
/// ts/dur) — loadable directly in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. One process-wide recorder, started/stopped explicitly
/// (Tracer::start / Tracer::stop); spans are recorded into per-thread
/// buffers with steady-clock timestamps, so recording never takes a lock
/// on the hot path.
///
/// Cost when off: Tracer::active() is one relaxed atomic load, and
/// TraceSpan construction against a null tracer stores two pointers.
/// Determinism: spans observe, never steer — no counter, schedule pick, or
/// JSON value reads the tracer, so traced and untraced runs produce
/// byte-identical study output.
class Tracer {
 public:
  struct Event {
    const char* name;  ///< static-lifetime span name (span taxonomy)
    const char* cat;   ///< static-lifetime category
    std::int64_t ts_us;
    std::int64_t dur_us;
  };

  /// The running tracer, or nullptr when tracing is off.
  [[nodiscard]] static Tracer* active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Starts recording into a fresh tracer whose write() targets `path`.
  /// A tracer already running is stopped (discarding its events) first.
  static void start(std::string path);

  /// Stops recording, writes the trace file, and destroys the tracer.
  /// Returns false when no tracer was running or the file could not be
  /// written (a warning is printed either way on write failure).
  static bool stop();

  /// Records one complete span (called by ~TraceSpan).
  void record(const char* name, const char* cat,
              std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end);

  /// Microseconds since this tracer started.
  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  Tracer();

  struct ThreadBuffer {
    std::vector<Event> events;
  };

  [[nodiscard]] ThreadBuffer& buffer_for_this_thread();
  [[nodiscard]] bool write(const std::string& path);

  /// Distinct for every tracer ever constructed. The per-thread buffer
  /// cache keys on this instead of the tracer address: a new tracer can
  /// reuse a deleted one's allocation, and a pointer-keyed cache would
  /// then hand back a dangling buffer.
  std::uint64_t generation_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;  ///< guards buffers_ registration and the final write
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  static std::atomic<Tracer*> active_;
  static std::mutex lifecycle_mu_;
  static std::string path_;
};

/// RAII span: records [construction, destruction) into the active tracer.
/// With tracing off the constructor is a relaxed load and the destructor a
/// null check. Pass nullptr as `name` to skip recording even while tracing
/// (the sampling hook for high-frequency spans like rewinds).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "cfc")
      : tracer_(name != nullptr ? Tracer::active() : nullptr),
        name_(name),
        cat_(cat) {
    if (tracer_ != nullptr) {
      begin_ = std::chrono::steady_clock::now();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, cat_, begin_,
                      std::chrono::steady_clock::now());
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  std::chrono::steady_clock::time_point begin_;
};

/// Validates a Chrome trace-event JSON payload: the shape cfc writes
/// (top-level traceEvents array of ph:"X" events with name/ts/dur/tid),
/// plus balanced nesting — within each tid, spans sorted by start time
/// must strictly nest (no partial overlap). Returns true on success;
/// appends human-readable problems to `errors` otherwise. Shared by
/// `cfc_report --check-trace` and the obs tests.
[[nodiscard]] bool check_trace_json(const std::string& payload,
                                    std::vector<std::string>* errors);

}  // namespace cfc::obs

#endif  // CFC_OBS_TRACE_H
