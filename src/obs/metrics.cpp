#include "obs/metrics.h"

namespace cfc::obs {

namespace {

constexpr std::array<MetricDesc, kMetricCount> kDescs = {{
#define CFC_OBS_METRIC_DESC(id, name, kind) \
  MetricDesc{name, MetricKind::kind},
    CFC_OBS_METRICS(CFC_OBS_METRIC_DESC)
#undef CFC_OBS_METRIC_DESC
}};

}  // namespace

const MetricDesc& metric_desc(Metric m) {
  return kDescs[static_cast<std::size_t>(m)];
}

MetricRegistry::MetricRegistry() = default;

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Shard& MetricRegistry::my_shard() {
  // Threads claim shard indices round-robin on first use; with kShards a
  // power of two well above typical pool sizes, collisions are rare and
  // harmless (relaxed adds on a shared shard stay correct, just contended).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[mine];
}

void MetricRegistry::add(Metric m, std::uint64_t delta) {
  my_shard().v[static_cast<std::size_t>(m)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricRegistry::set(Metric m, std::uint64_t value) {
  gauges_[static_cast<std::size_t>(m)].store(value,
                                             std::memory_order_relaxed);
}

void MetricRegistry::set_max(Metric m, std::uint64_t value) {
  std::atomic<std::uint64_t>& slot = gauges_[static_cast<std::size_t>(m)];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

MetricRegistry::Snapshot MetricRegistry::snapshot() const {
  Snapshot snap;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    if (kDescs[m].kind == MetricKind::Gauge) {
      snap.values[m] = gauges_[m].load(std::memory_order_relaxed);
    } else {
      std::uint64_t total = 0;
      for (const Shard& shard : shards_) {
        total += shard.v[m].load(std::memory_order_relaxed);
      }
      snap.values[m] = total;
    }
  }
  return snap;
}

void MetricRegistry::reset() {
  for (Shard& shard : shards_) {
    for (auto& cell : shard.v) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) {
    gauge.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cfc::obs
