#include "obs/progress.h"

#include <utility>

namespace cfc::obs {

ProgressReporter::ProgressReporter(Options opts)
    : opts_(std::move(opts)),
      start_(std::chrono::steady_clock::now()),
      prev_time_(start_) {
  if (opts_.interval_ms < 1) {
    opts_.interval_ms = 1;
  }
  if (!opts_.path.empty()) {
    file_ = std::fopen(opts_.path.c_str(), "w");
    if (file_ == nullptr) {
      std::fprintf(stderr, "cfc: could not open progress file %s\n",
                   opts_.path.c_str());
    }
  }
  MetricRegistry& registry = MetricRegistry::global();
  registry_was_enabled_ = registry.enabled();
  registry.set_enabled(true);
  prev_ = registry.snapshot();
  thread_ = std::thread([this] { loop(); });
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  emit();  // final heartbeat with the end-of-run totals
  MetricRegistry::global().set_enabled(registry_was_enabled_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

void ProgressReporter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms));
    if (stopping_) {
      break;
    }
    lock.unlock();
    emit();
    lock.lock();
  }
}

void ProgressReporter::emit() {
  const MetricRegistry::Snapshot snap = MetricRegistry::global().snapshot();
  const auto now = std::chrono::steady_clock::now();
  const double ms_total =
      std::chrono::duration<double, std::milli>(now - start_).count();
  const double ms_delta =
      std::chrono::duration<double, std::milli>(now - prev_time_).count();

  const std::uint64_t states = snap.value(Metric::states_visited);
  const std::uint64_t states_delta =
      states - prev_.value(Metric::states_visited);
  const double states_per_sec =
      ms_delta > 0.0 ? 1000.0 * static_cast<double>(states_delta) / ms_delta
                     : 0.0;
  const std::uint64_t cache_hits = snap.value(Metric::cache_hits);
  const std::uint64_t sleep_blocked = snap.value(Metric::sleep_blocked);
  // Rates per visited node: how often the caches/sleep sets cut a branch.
  const double denom = states > 0 ? static_cast<double>(states) : 1.0;
  const double cache_rate = static_cast<double>(cache_hits) / denom;
  const double sleep_rate = static_cast<double>(sleep_blocked) / denom;

  if (file_ != nullptr) {
    std::fprintf(
        file_,
        "{\"ms\": %.1f, \"cells_done\": %llu, \"cells_total\": %llu, "
        "\"states\": %llu, \"states_per_sec\": %.1f, "
        "\"cache_hits\": %llu, \"cache_hit_rate\": %.4f, "
        "\"sleep_blocked\": %llu, \"sleep_blocked_rate\": %.4f, "
        "\"visited_live_bytes\": %llu, \"slab_bytes\": %llu, "
        "\"steals\": %llu}\n",
        ms_total,
        static_cast<unsigned long long>(snap.value(Metric::cells_done)),
        static_cast<unsigned long long>(snap.value(Metric::cells_total)),
        static_cast<unsigned long long>(states), states_per_sec,
        static_cast<unsigned long long>(cache_hits), cache_rate,
        static_cast<unsigned long long>(sleep_blocked), sleep_rate,
        static_cast<unsigned long long>(
            snap.value(Metric::visited_live_bytes)),
        static_cast<unsigned long long>(snap.value(Metric::slab_bytes)),
        static_cast<unsigned long long>(snap.value(Metric::steals)));
    std::fflush(file_);
  } else if (opts_.path.empty()) {
    std::fprintf(
        stderr,
        "[cfc] t=%.1fs cells %llu/%llu states %llu (%.0f/s) "
        "cache-hit %.1f%% sleep-block %.1f%% visited %llu B slab %llu B "
        "steals %llu\n",
        ms_total / 1000.0,
        static_cast<unsigned long long>(snap.value(Metric::cells_done)),
        static_cast<unsigned long long>(snap.value(Metric::cells_total)),
        static_cast<unsigned long long>(states), states_per_sec,
        100.0 * cache_rate, 100.0 * sleep_rate,
        static_cast<unsigned long long>(
            snap.value(Metric::visited_live_bytes)),
        static_cast<unsigned long long>(snap.value(Metric::slab_bytes)),
        static_cast<unsigned long long>(snap.value(Metric::steals)));
  }
  prev_ = snap;
  prev_time_ = now;
}

}  // namespace cfc::obs
