#ifndef CFC_OBS_PROGRESS_H
#define CFC_OBS_PROGRESS_H

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace cfc::obs {

/// Periodic heartbeat over the MetricRegistry: a background thread wakes
/// every interval, snapshots the registry, and emits one progress line —
/// human-readable to stderr, or one JSON object per line (JSONL) to a
/// file. Reports cells done/total, cumulative states and the states/sec
/// over the last interval, cache hit and sleep-block rates, live
/// visited-table / slab bytes, and steals.
///
/// The reporter enables the global registry for its lifetime (restoring
/// the previous state on stop), so instrumented code only pays for
/// accounting while someone is listening. Like the tracer, it observes and
/// never steers: study/bench JSON is byte-identical with a reporter
/// running.
class ProgressReporter {
 public:
  struct Options {
    /// JSONL output path; empty emits the human format to stderr.
    std::string path;
    int interval_ms = 500;
  };

  explicit ProgressReporter(Options opts);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Stops the thread and emits one final heartbeat. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void loop();
  void emit();

  Options opts_;
  std::FILE* file_ = nullptr;  ///< owned when opts_.path is non-empty
  bool registry_was_enabled_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point prev_time_;
  MetricRegistry::Snapshot prev_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace cfc::obs

#endif  // CFC_OBS_PROGRESS_H
