#ifndef CFC_CORE_ADVERSARY_H
#define CFC_CORE_ADVERSARY_H

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/measures.h"
#include "memory/access.h"
#include "sched/sim.h"

namespace cfc {

/// Executable versions of the scheduling adversaries used in the paper's
/// lower-bound proofs. Each takes a `SimSetup` callback that populates a
/// fresh simulator (registers + processes), so the same construction runs
/// against any algorithm.
using SimSetup = std::function<void(Sim&)>;

/// --- Solo-run profiles (Section 2.4). ---

/// The profile of run(p): the access sequence of process p in a run where
/// only p is activated, decomposed into the quantities used by Lemmas 2-6:
///  * writes    — the sequence W(p, m) of (register, value) per write
///  * reads     — the set R(p) of registers p reads
///  * wr        — the sequence wr(p) of registers in first-write order
struct SoloProfile {
  Pid pid = -1;
  std::vector<Access> accesses;
  std::vector<std::pair<RegId, Value>> writes;
  std::set<RegId> reads;
  std::vector<RegId> wr;
  std::optional<int> output;

  [[nodiscard]] std::optional<std::pair<RegId, Value>> W(std::size_t m) const {
    if (m < writes.size()) {
      return writes[m];
    }
    return std::nullopt;
  }
};

/// Runs process `pid` alone (SoloScheduler) in a fresh sim built by `setup`
/// and extracts its profile.
[[nodiscard]] SoloProfile solo_profile(const SimSetup& setup, Pid pid,
                                       std::uint64_t max_steps = 100'000);

/// --- Lemma 2: the two-process merge adversary. ---

/// Lemma 2's condition for a pair of solo profiles: there exists m such that
/// W(p1,m) and W(p2,m) are defined, W(p1,m) != W(p2,m), and Wr(p1,m) is read
/// by p2 or Wr(p2,m) is read by p1. Every *correct* contention detector
/// satisfies this for every pair of distinct processes; an algorithm that
/// violates it falls to the merge adversary below.
[[nodiscard]] bool lemma2_condition(const SoloProfile& a, const SoloProfile& b);

/// Outcome of the Lemma 2 merge construction.
struct MergeResult {
  std::optional<int> output1;
  std::optional<int> output2;
  bool both_terminated = false;
  /// Max whole-run complexity over the two merged processes — the
  /// contention the scripted adversary constructed, measured streaming.
  /// The exhaustive explorer must find at least this much (its schedule
  /// space contains the merge schedule); the explorer tests assert it.
  ComplexityReport max_total;

  [[nodiscard]] bool both_won() const {
    return output1 == 1 && output2 == 1;
  }
};

/// Runs the inductive merge of Lemma 2's proof on processes p1 and p2 in a
/// fresh sim: p1 executes reads until it is about to write, then p2 executes
/// its reads and its next write, then p1 its write; repeat. Against an
/// algorithm violating `lemma2_condition` (e.g. SelfishDetector), both
/// processes stay hidden from each other and both output 1 — a safety
/// violation that proves the lemma's contrapositive.
[[nodiscard]] MergeResult lemma2_merge(const SimSetup& setup, Pid p1, Pid p2,
                                       std::uint64_t max_steps = 100'000);

/// --- Theorem 6: the lockstep symmetry adversary. ---

/// Result of running identical processes in lockstep rounds.
struct LockstepResult {
  /// Rounds executed; the surviving process performed one access per round.
  std::uint64_t rounds = 0;
  /// The process kept in the identical set until the end.
  Pid survivor = -1;
  /// True iff two or more still-identical processes terminated together
  /// (for naming this means duplicate names — a correctness violation the
  /// adversary hunts for; never true for a correct algorithm).
  bool identical_group_terminated = false;
  /// Size of the identical set after each round.
  std::vector<std::size_t> group_sizes;
};

/// Theorem 6's adversary: all processes in `group` start identical (same
/// code, no ids). Each round, every member of the current identical set
/// takes one step; because they are in identical states they all apply the
/// same operation to the same register, and (for any operation other than
/// test-and-flip) at least |set|-1 of them observe the same return value.
/// The adversary keeps the largest same-observation class and repeats.
/// For non-TAF models the set shrinks by at most one per round, forcing
/// n - 1 rounds; with test-and-flip it halves, collapsing in ~log n rounds.
[[nodiscard]] LockstepResult lockstep_symmetry_adversary(
    Sim& sim, std::vector<Pid> group, std::uint64_t max_rounds = 1'000'000);

/// --- Theorems 5 & 7: sequential contention-free runs. ---

/// Drives every process of `sim` to completion one after the other in pid
/// order (the contention-free schedule of Sections 3.2/3.3) and returns the
/// trace for measurement. Returns false if the budget ran out.
bool run_sequentially(Sim& sim, std::uint64_t max_steps = 1'000'000);

}  // namespace cfc

#endif  // CFC_CORE_ADVERSARY_H
