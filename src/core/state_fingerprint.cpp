#include "core/state_fingerprint.h"

#include "memory/fingerprint.h"

namespace cfc {

std::uint64_t fingerprint_combine(std::uint64_t h, std::uint64_t v) {
  return fp_push(h, v);
}

std::uint64_t state_fingerprint(const Sim& sim) {
  std::uint64_t h = fp_push(fp_mix(0x5f17e0ULL), sim.memory().fingerprint());
  for (Pid p = 0; p < sim.process_count(); ++p) {
    h = fp_push(h, sim.process_digest(p));
    h = fp_push(h, (static_cast<std::uint64_t>(sim.status(p)) << 8) |
                       static_cast<std::uint64_t>(sim.section(p)));
  }
  return h;
}

}  // namespace cfc
