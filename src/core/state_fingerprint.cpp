#include "core/state_fingerprint.h"

#include "memory/fingerprint.h"

namespace cfc {

std::uint64_t fingerprint_combine(std::uint64_t h, std::uint64_t v) {
  return fp_push(h, v);
}

std::uint64_t state_fingerprint(const Sim& sim) {
  // O(1): the per-process half is Sim::proc_state_fp(), an XOR of slot
  // hashes the simulator maintains with one batched update per unit — no
  // per-node walk over the process table.
  return fp_push(fp_mix(0x5f17e0ULL), sim.memory().fingerprint()) ^
         sim.proc_state_fp();
}

}  // namespace cfc
