#ifndef CFC_CORE_MEASURES_H
#define CFC_CORE_MEASURES_H

#include <iosfwd>
#include <vector>

#include "memory/types.h"
#include "sched/run.h"

namespace cfc {

/// A half-open window [begin, end) of event sequence numbers — the paper's
/// run fragment sigma_{i..j}.
struct SeqRange {
  Seq begin = 0;
  Seq end = 0;
};

/// Step and register complexity of one process over one run fragment
/// (Section 2.2), with the read/write refinements used by Lemma 3.
///
///  * steps      — number of shared-memory accesses (step complexity)
///  * registers  — number of *distinct* registers accessed (register
///                 complexity; a lower bound on remote accesses)
///  * read_/write_ splits — read-step/write-step and read-register/
///                 write-register complexity (an access can be only one of
///                 read or write in the atomic-register model; rmw bit ops
///                 count as writes, plain bit reads as reads)
///  * atomicity  — width in bits of the widest register accessed
struct ComplexityReport {
  int steps = 0;
  int registers = 0;
  int read_steps = 0;
  int write_steps = 0;
  int read_registers = 0;
  int write_registers = 0;
  int atomicity = 0;
  /// True when the run(s) behind this report were cut off before completing
  /// (RunOutcome::BudgetExhausted, or an explorer depth/preemption bound):
  /// the values are a lower bound on what an uncut run would have measured.
  /// Propagates through max_with/plus as logical OR.
  bool truncated = false;

  /// Component-wise maximum (for "max over processes / fragments").
  [[nodiscard]] ComplexityReport max_with(const ComplexityReport& o) const;

  /// Component-wise sum (entry + exit complexity).
  [[nodiscard]] ComplexityReport plus(const ComplexityReport& o) const;
};

std::ostream& operator<<(std::ostream& os, const ComplexityReport& r);

/// Complexity of process `pid` over the fragment `window` of `trace`.
[[nodiscard]] ComplexityReport measure(const Trace& trace, Pid pid,
                                       SeqRange window);

/// Complexity of process `pid` over the whole trace.
[[nodiscard]] ComplexityReport measure_all(const Trace& trace, Pid pid);

/// --- Measurement windows for mutual exclusion (Section 2.2). ---

/// Contention-free sessions of `pid`: fragments from a Remainder->Entry
/// transition of pid to its next Exit->Remainder transition during which
/// every other process stays in its remainder region (not-started processes
/// count as remainder). The paper's contention-free step/register
/// complexity is the max of `measure` over these windows, over all pids.
[[nodiscard]] std::vector<SeqRange> contention_free_sessions(const Trace& trace,
                                                             Pid pid,
                                                             int nprocs);

/// Clean entry windows of `pid` for the *worst-case* entry complexity:
/// fragments from a Remainder->Entry transition of pid to its next
/// Entry->Critical transition such that no process is in its critical
/// section or exit code in any state of the fragment (the paper's condition
/// 2, which discounts time spent waiting for the previous winner to leave).
[[nodiscard]] std::vector<SeqRange> clean_entry_windows(const Trace& trace,
                                                        Pid pid, int nprocs);

/// Exit windows of `pid`: fragments from Critical->Exit to Exit->Remainder.
[[nodiscard]] std::vector<SeqRange> exit_windows(const Trace& trace, Pid pid);

/// Max of `measure` over a set of windows (zero report if none).
[[nodiscard]] ComplexityReport max_over_windows(
    const Trace& trace, Pid pid, const std::vector<SeqRange>& windows);

}  // namespace cfc

#endif  // CFC_CORE_MEASURES_H
