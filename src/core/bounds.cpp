#include "core/bounds.h"

#include <cmath>
#include <stdexcept>

namespace cfc::bounds {

namespace {

constexpr double kEps = 1e-9;

double log2_checked(double x) {
  if (x <= 0) {
    throw std::invalid_argument("log2 of non-positive value");
  }
  return std::log2(x);
}

/// log2(w!) computed via lgamma, stable for large w.
double log2_factorial(double w) {
  if (w < 0) {
    throw std::invalid_argument("factorial of negative value");
  }
  return std::lgamma(w + 1.0) / std::log(2.0);
}

}  // namespace

int ceil_log2(std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument("ceil_log2(0)");
  }
  int bits = 0;
  std::uint64_t v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

int floor_log2(std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument("floor_log2(0)");
  }
  int bits = -1;
  while (n > 0) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

int ceil_div(int a, int b) {
  if (b <= 0) {
    throw std::invalid_argument("ceil_div by non-positive");
  }
  return (a + b - 1) / b;
}

double thm1_cf_step_lower(double n, double l) {
  if (n < 2) {
    return 0.0;
  }
  const double log_n = log2_checked(n);
  if (log_n <= 1.0) {
    return 0.0;  // log log n undefined/non-positive; bound vacuous
  }
  const double denom = l - 2.0 + 3.0 * log2_checked(log_n);
  if (denom <= 0.0) {
    return 0.0;
  }
  return log_n / denom;
}

int thm1_min_cf_steps(std::uint64_t n, int l) {
  const double rhs = thm1_cf_step_lower(static_cast<double>(n),
                                        static_cast<double>(l));
  // strict inequality: smallest integer c with c > rhs
  return static_cast<int>(std::floor(rhs + kEps)) + 1;
}

double thm2_cf_register_lower(double n, double l) {
  if (n < 2) {
    return 0.0;
  }
  const double log_n = log2_checked(n);
  if (log_n <= 1.0) {
    return 0.0;
  }
  const double denom = l + log2_checked(log_n);
  if (denom <= 0.0) {
    return 0.0;
  }
  return std::sqrt(log_n / denom);
}

int thm2_min_cf_registers(std::uint64_t n, int l) {
  const double rhs = thm2_cf_register_lower(static_cast<double>(n),
                                            static_cast<double>(l));
  // derivation gives (c+1)^2 > log n/(l + log log n), i.e. c > sqrt(rhs) - 1
  const double c_min = rhs - 1.0;
  if (c_min < 0.0) {
    return 1;  // a process must access at least one register
  }
  return static_cast<int>(std::floor(c_min + kEps)) + 1;
}

int thm3_cf_step_upper(std::uint64_t n, int l) {
  if (l < 1) {
    throw std::invalid_argument("atomicity must be >= 1");
  }
  if (n <= 1) {
    return 0;
  }
  return 7 * ceil_div(ceil_log2(n), l);
}

int thm3_cf_register_upper(std::uint64_t n, int l) {
  if (l < 1) {
    throw std::invalid_argument("atomicity must be >= 1");
  }
  if (n <= 1) {
    return 0;
  }
  return 3 * ceil_div(ceil_log2(n), l);
}

bool lemma3_satisfied(std::uint64_t n, int l, int w, int r) {
  if (w <= 0 || r <= 0) {
    // Lemma 4's inequality (2): every solo run reads and writes at least
    // once before terminating; a measured w or r of zero means the window
    // was empty and the inequality is inapplicable.
    return n <= 1;
  }
  const double wd = w;
  const double rd = r;
  const double lhs =
      wd * static_cast<double>(l) +
      wd * std::log2(wd * wd * rd + wd * rd * rd);
  return lhs + kEps >= std::log2(static_cast<double>(n));
}

bool lemma6_satisfied(std::uint64_t n, int l, int c, int w) {
  if (c <= 0 || w <= 0) {
    return n <= 1;
  }
  const double cd = c;
  const double wd = w;
  const double lf = log2_factorial(wd);
  // log2 rhs = 1 + log2(w!) + c*(log2(4c) + log2(w!)) + w*(log2 w + l*w)
  const double log_rhs = 1.0 + lf + cd * (std::log2(4.0 * cd) + lf) +
                         wd * (std::log2(wd) + static_cast<double>(l) * wd);
  return std::log2(static_cast<double>(n)) < log_rhs + kEps;
}

int min_contention_free_bit_accesses(int l, int c) { return l + c - 1; }

int thm4_taf_wc_step(std::uint64_t n) { return ceil_log2(n); }

int thm4_tastar_wc_register(std::uint64_t n) { return ceil_log2(n); }

std::uint64_t thm4_tas_wc_step(std::uint64_t n) { return n == 0 ? 0 : n - 1; }

int thm4_tasread_cf_step(std::uint64_t n) { return ceil_log2(n); }

int thm5_cf_register_lower(std::uint64_t n) { return ceil_log2(n); }

std::uint64_t thm6_wc_step_lower(std::uint64_t n) {
  return n == 0 ? 0 : n - 1;
}

std::uint64_t thm7_tas_cf_register_lower(std::uint64_t n) {
  return n == 0 ? 0 : n - 1;
}

}  // namespace cfc::bounds
