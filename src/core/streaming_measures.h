#ifndef CFC_CORE_STREAMING_MEASURES_H
#define CFC_CORE_STREAMING_MEASURES_H

#include <set>
#include <vector>

#include "core/measures.h"
#include "memory/types.h"
#include "sched/event_sink.h"

namespace cfc {

/// Streaming replacement for the offline trace measurement: an EventSink
/// that computes, online and per process,
///
///   * the whole-run complexity (== measure_all(trace, pid)),
///   * the max complexity over contention-free sessions
///     (== max_over_windows over contention_free_sessions),
///   * the max complexity over clean entry windows
///     (== max_over_windows over clean_entry_windows), and
///   * the max complexity over exit windows
///     (== max_over_windows over exit_windows),
///
/// replicating the window semantics of core/measures.h exactly — a
/// randomized differential test asserts equality against the trace-based
/// path. Because nothing is materialized, long random-schedule searches can
/// run with Sim trace recording disabled, dropping the per-event allocation
/// cost of the trace from the hot path.
class MeasureAccumulator final : public EventSink {
 public:
  /// `nprocs` must cover every pid that will appear in the run.
  explicit MeasureAccumulator(int nprocs);

  void on_event(const TraceEvent& ev) override;

  /// Whole-run complexity of `pid` (== measure_all on the trace).
  [[nodiscard]] ComplexityReport total(Pid pid) const;

  /// Max complexity over the paper's measurement windows of `pid`.
  [[nodiscard]] ComplexityReport contention_free_session_max(Pid pid) const;
  [[nodiscard]] ComplexityReport clean_entry_max(Pid pid) const;
  [[nodiscard]] ComplexityReport exit_max(Pid pid) const;

  /// Number of *completed* contention-free sessions of `pid` so far.
  [[nodiscard]] int contention_free_session_count(Pid pid) const;

  /// Marks the measurement as cut off (the driver stopped the run on
  /// RunOutcome::BudgetExhausted or an exploration bound): every report
  /// this accumulator returns afterwards carries `truncated = true`.
  void mark_truncated() { truncated_ = true; }
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// --- State digests (visited-state pruning in analysis/explorer). ---

  /// 64-bit hash of the full measurement state: totals, window maxima, open
  /// windows, and the section table. Combine with core/state_fingerprint
  /// when an exploration objective reads whole-run totals. Note the totals
  /// grow with every access, so under this digest no two states along one
  /// path ever merge — use window_digest() for window-maxima objectives.
  [[nodiscard]] std::uint64_t digest() const;

  /// Hash of only the window-measurement state (cf-session / clean-entry /
  /// exit maxima, any open windows, the section table) — everything a
  /// window-maxima objective's future values can depend on, excluding the
  /// monotonically growing totals that would defeat pruning.
  [[nodiscard]] std::uint64_t window_digest() const;

  [[nodiscard]] int process_count() const {
    return static_cast<int>(per_pid_.size());
  }

 private:
  /// Incrementally built ComplexityReport: counts plus the distinct-register
  /// sets backing the register-complexity components.
  struct ReportAcc {
    ComplexityReport rep;
    std::set<RegId> regs;
    std::set<RegId> read_regs;
    std::set<RegId> write_regs;

    void add(const Access& a);
    void reset();
    [[nodiscard]] ComplexityReport report() const;
    [[nodiscard]] std::uint64_t digest() const;
  };

  /// One measurement window currently open for a process.
  struct WindowState {
    bool open = false;
    bool clean = false;
    ReportAcc acc;
  };

  struct PerPid {
    ReportAcc total;
    WindowState cf_session;
    WindowState clean_entry;
    WindowState exit;
    ComplexityReport cf_session_max;
    ComplexityReport clean_entry_max;
    ComplexityReport exit_max;
    int cf_sessions_completed = 0;
  };

  void on_access(const TraceEvent& ev);
  void on_section_change(const TraceEvent& ev);

  [[nodiscard]] bool others_in_remainder(Pid pid) const;
  [[nodiscard]] bool nobody_in_cs_or_exit() const;

  [[nodiscard]] const PerPid& at(Pid pid) const;
  [[nodiscard]] PerPid& at(Pid pid);

  std::vector<PerPid> per_pid_;
  std::vector<Section> section_;
  bool truncated_ = false;
};

}  // namespace cfc

#endif  // CFC_CORE_STREAMING_MEASURES_H
