#ifndef CFC_CORE_STREAMING_MEASURES_H
#define CFC_CORE_STREAMING_MEASURES_H

#include <algorithm>
#include <vector>

#include "core/measures.h"
#include "memory/types.h"
#include "sched/event_sink.h"

namespace cfc {

/// Sorted-unique flat set of register ids, backing the register-complexity
/// counts. A vector rather than a node-based std::set: the explorer copies
/// accumulator snapshots on every branching DFS node and every sibling
/// restore, and vector copy-assignment reuses the destination's capacity —
/// steady-state allocation-free — where std::set would allocate one node
/// per element per copy. Windows touch few registers, so the ordered
/// insert's linear shift is cheaper than chasing tree nodes anyway.
class RegIdSet {
 public:
  void insert(RegId r) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), r);
    if (it == ids_.end() || *it != r) {
      ids_.insert(it, r);
    }
  }
  void clear() { ids_.clear(); }  // keeps capacity
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] std::vector<RegId>::const_iterator begin() const {
    return ids_.begin();
  }
  [[nodiscard]] std::vector<RegId>::const_iterator end() const {
    return ids_.end();
  }

 private:
  std::vector<RegId> ids_;
};

/// Streaming replacement for the offline trace measurement: an EventSink
/// that computes, online and per process,
///
///   * the whole-run complexity (== measure_all(trace, pid)),
///   * the max complexity over contention-free sessions
///     (== max_over_windows over contention_free_sessions),
///   * the max complexity over clean entry windows
///     (== max_over_windows over clean_entry_windows), and
///   * the max complexity over exit windows
///     (== max_over_windows over exit_windows),
///
/// replicating the window semantics of core/measures.h exactly — a
/// randomized differential test asserts equality against the trace-based
/// path. Because nothing is materialized, long random-schedule searches can
/// run with Sim trace recording disabled, dropping the per-event allocation
/// cost of the trace from the hot path.
class MeasureAccumulator final : public EventSink {
 public:
  /// `nprocs` must cover every pid that will appear in the run.
  explicit MeasureAccumulator(int nprocs);

  void on_event(const TraceEvent& ev) override;

  /// Whole-run complexity of `pid` (== measure_all on the trace).
  [[nodiscard]] ComplexityReport total(Pid pid) const;

  /// Max complexity over the paper's measurement windows of `pid`.
  [[nodiscard]] ComplexityReport contention_free_session_max(Pid pid) const;
  [[nodiscard]] ComplexityReport clean_entry_max(Pid pid) const;
  [[nodiscard]] ComplexityReport exit_max(Pid pid) const;

  /// Number of *completed* contention-free sessions of `pid` so far.
  [[nodiscard]] int contention_free_session_count(Pid pid) const;

  /// Marks the measurement as cut off (the driver stopped the run on
  /// RunOutcome::BudgetExhausted or an exploration bound): every report
  /// this accumulator returns afterwards carries `truncated = true`.
  void mark_truncated() { truncated_ = true; }
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// --- State digests (visited-state pruning in analysis/explorer). ---

  /// 64-bit hash of the full measurement state: totals, window maxima, open
  /// windows, and the section table. Combine with core/state_fingerprint
  /// when an exploration objective reads whole-run totals. Note the totals
  /// grow with every access, so under this digest no two states along one
  /// path ever merge — use window_digest() for window-maxima objectives.
  [[nodiscard]] std::uint64_t digest() const;

  /// Hash of only the window-measurement state (cf-session / clean-entry /
  /// exit maxima, any open windows, the section table) — everything a
  /// window-maxima objective's future values can depend on, excluding the
  /// monotonically growing totals that would defeat pruning.
  ///
  /// This digest is also the "objective state" of the partial-order
  /// reduction's trace-invariance argument (por/dependence.h): an Access
  /// event updates only its own process's open-window counts and never
  /// reads the section table, while a SectionChange event drives every
  /// window predicate through the section table and the clean flags.
  /// Swapping two adjacent scheduler units therefore leaves this state —
  /// and with it every future window value — unchanged exactly when the
  /// units have no register conflict and at most one of them emitted a
  /// section change, which is the dependence relation the reduced
  /// certified searches commute under.
  [[nodiscard]] std::uint64_t window_digest() const;

  [[nodiscard]] int process_count() const {
    return static_cast<int>(per_pid_.size());
  }

 private:
  /// Incrementally built ComplexityReport: counts plus the distinct-register
  /// sets backing the register-complexity components.
  struct ReportAcc {
    ComplexityReport rep;
    RegIdSet regs;
    RegIdSet read_regs;
    RegIdSet write_regs;
    /// Order-independent multiset hash of every access added since the
    /// last reset (summed, so repetitions count). Every other field is a
    /// function of that multiset, so this single word is a sound state
    /// digest — and it makes digest() an O(1) read where iterating the
    /// register sets per explorer node would dominate the search.
    std::uint64_t multiset_hash = 0;

    void add(const Access& a);
    void reset();
    [[nodiscard]] ComplexityReport report() const;
    [[nodiscard]] std::uint64_t digest() const;
  };

  /// One measurement window currently open for a process.
  struct WindowState {
    bool open = false;
    bool clean = false;
    ReportAcc acc;
  };

  struct PerPid {
    ReportAcc total;
    WindowState cf_session;
    WindowState clean_entry;
    WindowState exit;
    ComplexityReport cf_session_max;
    ComplexityReport clean_entry_max;
    ComplexityReport exit_max;
    int cf_sessions_completed = 0;
    /// XOR-combinable digest contributions, maintained lazily: the
    /// explorer hashes the accumulator at EVERY DFS node for its
    /// visited-state key, so digest()/window_digest() must be near-reads.
    /// Event handlers only set the dirty flags (between two explorer
    /// nodes exactly one access happened, so at most one pid is dirty);
    /// the digest getters refresh flagged contributions and cache them.
    /// max_hash covers the window maxima + session count and is refreshed
    /// eagerly at window closes (rare).
    mutable std::uint64_t window_contrib = 0;
    mutable std::uint64_t total_contrib = 0;
    std::uint64_t max_hash = 0;
    mutable bool window_dirty = false;
    mutable bool total_dirty = false;
  };

  void on_access(const TraceEvent& ev);
  void on_section_change(const TraceEvent& ev);
  void refresh_window_contrib(Pid pid) const;
  void refresh_total_contrib(Pid pid) const;
  void refresh_max_hash(Pid pid);

  [[nodiscard]] bool others_in_remainder(Pid pid) const;
  [[nodiscard]] bool nobody_in_cs_or_exit() const;

  [[nodiscard]] const PerPid& at(Pid pid) const;
  [[nodiscard]] PerPid& at(Pid pid);

  std::vector<PerPid> per_pid_;
  std::vector<Section> section_;
  std::uint64_t section_hash_ = 0;  ///< XOR of per-pid section slots
  bool truncated_ = false;
};

}  // namespace cfc

#endif  // CFC_CORE_STREAMING_MEASURES_H
