#include "core/adversary.h"

#include <algorithm>
#include <map>

#include "core/streaming_measures.h"
#include "sched/sched.h"

namespace cfc {

namespace {

bool pending_is_read(const Sim& sim, Pid p) {
  const std::optional<PendingAccess> pa = sim.pending(p);
  if (!pa.has_value()) {
    return false;
  }
  if (pa->kind == AccessKind::Read) {
    return true;
  }
  if (pa->kind == AccessKind::Bit) {
    return !can_modify(pa->bit_op);
  }
  return false;
}

/// Returned value of the single access `pid` performed at-or-after trace
/// index `from`, if any.
std::optional<Value> observation_since(const Sim& sim, Pid pid, Seq from) {
  const std::vector<TraceEvent>& evs = sim.trace().events();
  for (std::size_t i = static_cast<std::size_t>(from); i < evs.size(); ++i) {
    const TraceEvent& ev = evs[i];
    if (ev.kind == TraceEvent::Kind::Access && ev.pid == pid) {
      return ev.access.returned;
    }
  }
  return std::nullopt;
}

}  // namespace

SoloProfile solo_profile(const SimSetup& setup, Pid pid,
                         std::uint64_t max_steps) {
  Sim sim;
  setup(sim);
  SoloScheduler solo(pid);
  drive(sim, solo, RunLimits{max_steps});

  SoloProfile prof;
  prof.pid = pid;
  prof.accesses = sim.trace().accesses_of(pid);
  std::set<RegId> seen_writes;
  for (const Access& a : prof.accesses) {
    if (a.is_write()) {
      prof.writes.emplace_back(a.reg, a.after);
      if (seen_writes.insert(a.reg).second) {
        prof.wr.push_back(a.reg);
      }
    }
    if (a.is_read()) {
      prof.reads.insert(a.reg);
    }
  }
  prof.output = sim.output(pid);
  return prof;
}

bool lemma2_condition(const SoloProfile& a, const SoloProfile& b) {
  const std::size_t m_max = std::min(a.writes.size(), b.writes.size());
  for (std::size_t m = 0; m < m_max; ++m) {
    if (a.writes[m] == b.writes[m]) {
      continue;  // same register, same value: the writes collide harmlessly
    }
    const RegId ra = a.writes[m].first;
    const RegId rb = b.writes[m].first;
    if (b.reads.count(ra) > 0 || a.reads.count(rb) > 0) {
      return true;
    }
  }
  return false;
}

MergeResult lemma2_merge(const SimSetup& setup, Pid p1, Pid p2,
                         std::uint64_t max_steps) {
  Sim sim;
  setup(sim);
  MeasureAccumulator acc(sim.process_count());
  sim.add_sink(acc);

  std::uint64_t steps = 0;
  auto advance_reads = [&](Pid p) {
    sim.ensure_started(p);
    while (steps < max_steps && sim.runnable(p) && pending_is_read(sim, p)) {
      sim.step(p);
      ++steps;
    }
  };

  // The inductive construction of Lemma 2's proof: per round, p1 performs
  // its reads up to its next write, p2 performs its reads and its write,
  // then p1 performs its write.
  while (steps < max_steps && (sim.runnable(p1) || sim.runnable(p2))) {
    const std::uint64_t before = steps;
    advance_reads(p1);
    advance_reads(p2);
    if (sim.runnable(p2)) {
      sim.step(p2);
      ++steps;
    }
    if (sim.runnable(p1)) {
      sim.step(p1);
      ++steps;
    }
    if (steps == before) {
      break;  // no progress (both blocked in ways the merge cannot resolve)
    }
  }

  MergeResult res;
  res.output1 = sim.output(p1);
  res.output2 = sim.output(p2);
  res.both_terminated = sim.status(p1) == ProcStatus::Done &&
                        sim.status(p2) == ProcStatus::Done;
  res.max_total = acc.total(p1).max_with(acc.total(p2));
  return res;
}

LockstepResult lockstep_symmetry_adversary(Sim& sim, std::vector<Pid> group,
                                           std::uint64_t max_rounds) {
  LockstepResult res;
  while (res.rounds < max_rounds && group.size() > 1) {
    // Key: (terminated this round, observed return value). Processes with
    // identical histories apply identical operations; the partition after
    // the round is fully determined by what each one observed.
    std::map<std::pair<bool, std::optional<Value>>, std::vector<Pid>> classes;
    for (Pid p : group) {
      if (!sim.runnable(p)) {
        classes[{true, std::nullopt}].push_back(p);
        continue;
      }
      const Seq before = sim.trace().next_seq();
      sim.step(p);
      const std::optional<Value> obs = observation_since(sim, p, before);
      const bool finished = sim.status(p) == ProcStatus::Done;
      classes[{finished, obs}].push_back(p);
    }
    res.rounds += 1;

    // Any class of >= 2 identical processes that terminated together
    // produced identical outputs — for naming, duplicate names.
    std::vector<Pid> next;
    for (const auto& [key, members] : classes) {
      if (key.first) {
        if (members.size() >= 2) {
          res.identical_group_terminated = true;
        }
        continue;
      }
      if (members.size() > next.size()) {
        next = members;
      }
    }
    if (res.identical_group_terminated) {
      group = next;
      break;
    }
    if (next.empty()) {
      break;  // everyone terminated (as singletons)
    }
    group = next;
    res.group_sizes.push_back(group.size());
  }
  res.survivor = group.empty() ? -1 : group.front();
  return res;
}

bool run_sequentially(Sim& sim, std::uint64_t max_steps) {
  std::vector<Pid> order;
  order.reserve(static_cast<std::size_t>(sim.process_count()));
  for (Pid p = 0; p < sim.process_count(); ++p) {
    order.push_back(p);
  }
  SequentialScheduler seq(std::move(order));
  return drive(sim, seq, RunLimits{max_steps}) == RunOutcome::AllDone;
}

}  // namespace cfc
