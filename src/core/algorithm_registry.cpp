#include "core/algorithm_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/bounds.h"

namespace cfc {

namespace {

template <class MapT, class EntryT>
std::vector<const EntryT*> enumerate(const MapT& map, std::string_view tag) {
  std::vector<const EntryT*> out;
  out.reserve(map.size());
  for (const auto& [name, entry] : map) {
    if (tag.empty() || entry.info.has_tag(tag)) {
      out.push_back(&entry);
    }
  }
  return out;  // maps iterate in key order: sorted by name
}

template <class MapT>
const auto& find_or_throw(const MapT& map, std::string_view name,
                          const char* kind) {
  const auto it = map.find(name);
  if (it == map.end()) {
    throw std::out_of_range(std::string("no registered ") + kind +
                            " algorithm named '" + std::string(name) + "'");
  }
  return it->second;
}

/// Registration-time metadata validation (shared by every kind): the
/// registry is the single source the linter, the benches, and the
/// experiment engine trust, so structurally impossible metadata is
/// rejected at self-registration instead of surfacing as a confusing
/// downstream failure. Runs before the emplace — a rejected entry never
/// becomes visible.
void validate_info(const AlgorithmInfo& info, const char* kind) {
  if (info.name.empty()) {
    throw std::logic_error(std::string(kind) +
                           " registration with an empty name");
  }
  if (info.max_n != 0 && info.max_n < 2) {
    // Every problem here is a multi-process coordination problem; a
    // capacity below two processes can only be a typo.
    throw std::logic_error(std::string(kind) + " algorithm '" + info.name +
                           "' declares max_n=" + std::to_string(info.max_n) +
                           " (capacities must allow at least 2 processes)");
  }
  if (info.pow2_n_only && info.max_n != 0 &&
      !bounds::is_power_of_two(info.max_n)) {
    throw std::logic_error(
        std::string(kind) + " algorithm '" + info.name +
        "' sets pow2_n_only but declares non-power-of-two max_n=" +
        std::to_string(info.max_n));
  }
}

}  // namespace

bool AlgorithmInfo::has_tag(std::string_view tag) const {
  return std::any_of(tags.begin(), tags.end(),
                     [tag](const std::string& t) { return t == tag; });
}

AlgorithmInfo AlgorithmInfo::named(std::string name) {
  AlgorithmInfo info;
  info.name = std::move(name);
  return info;
}

AlgorithmInfo&& AlgorithmInfo::desc(std::string d) && {
  description = std::move(d);
  return std::move(*this);
}

AlgorithmInfo&& AlgorithmInfo::model(Model m) && {
  required_model = m;
  return std::move(*this);
}

AlgorithmInfo&& AlgorithmInfo::atomicity(int l) && {
  atomicity_param = l;
  return std::move(*this);
}

AlgorithmInfo&& AlgorithmInfo::capacity_limit(int n) && {
  max_n = n;
  return std::move(*this);
}

AlgorithmInfo&& AlgorithmInfo::pow2_only() && {
  pow2_n_only = true;
  return std::move(*this);
}

AlgorithmInfo&& AlgorithmInfo::tag(std::string t) && {
  tags.push_back(std::move(t));
  return std::move(*this);
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::add_mutex(AlgorithmInfo info, MutexFactory factory) {
  validate_info(info, "mutex");
  const std::string name = info.name;
  if (!mutex_.emplace(name, MutexAlgorithmEntry{std::move(info),
                                                std::move(factory)})
           .second) {
    throw std::logic_error("duplicate mutex algorithm registration: " + name);
  }
}

void AlgorithmRegistry::add_naming(AlgorithmInfo info,
                                   NamingFactory factory) {
  validate_info(info, "naming");
  const std::string name = info.name;
  if (!naming_.emplace(name, NamingAlgorithmEntry{std::move(info),
                                                  std::move(factory)})
           .second) {
    throw std::logic_error("duplicate naming algorithm registration: " +
                           name);
  }
}

void AlgorithmRegistry::add_detector(AlgorithmInfo info,
                                     DetectorFactory factory) {
  validate_info(info, "detector");
  const std::string name = info.name;
  if (!detector_.emplace(name, DetectorAlgorithmEntry{std::move(info),
                                                      std::move(factory)})
           .second) {
    throw std::logic_error("duplicate detector algorithm registration: " +
                           name);
  }
}

const MutexAlgorithmEntry& AlgorithmRegistry::mutex(
    std::string_view name) const {
  return find_or_throw(mutex_, name, "mutex");
}

const NamingAlgorithmEntry& AlgorithmRegistry::naming(
    std::string_view name) const {
  return find_or_throw(naming_, name, "naming");
}

const DetectorAlgorithmEntry& AlgorithmRegistry::detector(
    std::string_view name) const {
  return find_or_throw(detector_, name, "detector");
}

std::vector<const MutexAlgorithmEntry*> AlgorithmRegistry::mutex_algorithms(
    std::string_view tag) const {
  return enumerate<decltype(mutex_), MutexAlgorithmEntry>(mutex_, tag);
}

std::vector<const NamingAlgorithmEntry*>
AlgorithmRegistry::naming_algorithms(std::string_view tag) const {
  return enumerate<decltype(naming_), NamingAlgorithmEntry>(naming_, tag);
}

std::vector<const DetectorAlgorithmEntry*>
AlgorithmRegistry::detector_algorithms(std::string_view tag) const {
  return enumerate<decltype(detector_), DetectorAlgorithmEntry>(detector_,
                                                                tag);
}

std::vector<const NamingAlgorithmEntry*> AlgorithmRegistry::naming_for_model(
    Model m) const {
  std::vector<const NamingAlgorithmEntry*> out;
  for (const auto& [name, entry] : naming_) {
    if (m.includes(entry.info.required_model)) {
      out.push_back(&entry);
    }
  }
  return out;
}

std::vector<const MutexAlgorithmEntry*> AlgorithmRegistry::mutex_for_n(
    int n, std::string_view tag) const {
  std::vector<const MutexAlgorithmEntry*> out;
  for (const MutexAlgorithmEntry* entry : mutex_algorithms(tag)) {
    if (entry->info.max_n != 0 && n > entry->info.max_n) {
      continue;
    }
    if (entry->info.pow2_n_only && !bounds::is_power_of_two(n)) {
      continue;
    }
    out.push_back(entry);
  }
  return out;
}

MutexRegistrar::MutexRegistrar(AlgorithmInfo info, MutexFactory factory) {
  AlgorithmRegistry::instance().add_mutex(std::move(info),
                                          std::move(factory));
}

NamingRegistrar::NamingRegistrar(AlgorithmInfo info, NamingFactory factory) {
  AlgorithmRegistry::instance().add_naming(std::move(info),
                                           std::move(factory));
}

DetectorRegistrar::DetectorRegistrar(AlgorithmInfo info,
                                     DetectorFactory factory) {
  AlgorithmRegistry::instance().add_detector(std::move(info),
                                             std::move(factory));
}

}  // namespace cfc
