#ifndef CFC_CORE_STATE_FINGERPRINT_H
#define CFC_CORE_STATE_FINGERPRINT_H

#include <cstdint>

#include "sched/sim.h"

namespace cfc {

/// Combines two 64-bit fingerprints order-dependently (fingerprint.h
/// fp_push). Use to fold auxiliary digests — e.g. a MeasureAccumulator
/// window_digest — into a state fingerprint.
[[nodiscard]] std::uint64_t fingerprint_combine(std::uint64_t h,
                                                std::uint64_t v);

/// 64-bit fingerprint of the global simulation state: the memory hash
/// (RegisterFile::fingerprint) folded with every process's observation
/// digest, status, and section. O(1) per call — both halves are
/// incrementally maintained by the simulator (the per-process half with
/// one batched update per scheduler unit, Sim::proc_state_fp).
///
/// Soundness for visited-state pruning: a process body is a deterministic
/// coroutine, so its local state (control point, locals, loop counters) is
/// a function of its observation history — which is exactly what
/// Sim::process_digest hashes. Two states of identically built simulations
/// with equal fingerprints therefore behave identically under every future
/// schedule (modulo 64-bit hash collisions — this certifies bounds at the
/// fidelity of the hash, like any hashed-state model checker).
///
/// The fingerprint deliberately does NOT cover event-sink state: combine it
/// with the relevant accumulator digest when the exploration objective
/// depends on measurement history (see ExploreObjective::digest).
[[nodiscard]] std::uint64_t state_fingerprint(const Sim& sim);

}  // namespace cfc

#endif  // CFC_CORE_STATE_FINGERPRINT_H
