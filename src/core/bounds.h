#ifndef CFC_CORE_BOUNDS_H
#define CFC_CORE_BOUNDS_H

#include <cstdint>

namespace cfc::bounds {

/// All logarithms are base 2, matching the paper's conventions.

/// ceil(log2(n)) for n >= 1.
[[nodiscard]] int ceil_log2(std::uint64_t n);

/// floor(log2(n)) for n >= 1.
[[nodiscard]] int floor_log2(std::uint64_t n);

/// ceil(a / b) for positive b.
[[nodiscard]] int ceil_div(int a, int b);

/// True iff n is a power of two (n >= 1).
[[nodiscard]] constexpr bool is_power_of_two(int n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

/// --- Mutual exclusion / contention detection (Section 2). ---

/// Theorem 1 (and Lemma 4): every algorithm for contention detection — and
/// hence every (weak) deadlock-free mutual exclusion algorithm — for n
/// processes with atomicity l has contention-free step complexity
///     c > log n / (l - 2 + 3 * log log n).
/// Returns the right-hand side; 0 when the denominator is non-positive (the
/// bound is vacuous for tiny n / large l).
[[nodiscard]] double thm1_cf_step_lower(double n, double l);

/// Smallest integer c consistent with Theorem 1 (strict inequality).
[[nodiscard]] int thm1_min_cf_steps(std::uint64_t n, int l);

/// Theorem 2: contention-free register complexity satisfies
///     c >= sqrt( log n / (l + log log n) ).
/// Returns the right-hand side (0 when vacuous).
[[nodiscard]] double thm2_cf_register_lower(double n, double l);

/// Smallest integer c consistent with Theorem 2's derivation
/// (c+1)^2 > log n / (l + log log n), i.e. c > sqrt(rhs) - 1.
[[nodiscard]] int thm2_min_cf_registers(std::uint64_t n, int l);

/// Theorem 3 upper bounds: the 2^l-ary tree of Lamport fast-mutex instances
/// has contention-free step complexity 7*ceil(log n / l) and contention-free
/// register complexity 3*ceil(log n / l).
[[nodiscard]] int thm3_cf_step_upper(std::uint64_t n, int l);
[[nodiscard]] int thm3_cf_register_upper(std::uint64_t n, int l);

/// Lemma 3 inequality: for every contention-detection algorithm with n
/// processes, atomicity l, contention-free write-step complexity w and
/// contention-free read-register complexity r,
///     w*l + w*log(w^2*r + w*r^2) >= log n.
/// Returns true iff the measured (w, r) satisfy the inequality — which every
/// *correct* algorithm must.
[[nodiscard]] bool lemma3_satisfied(std::uint64_t n, int l, int w, int r);

/// Lemma 6 inequality: for every contention-detection algorithm with n
/// processes, atomicity l, contention-free register complexity c and
/// contention-free write-register complexity w,
///     n < 2*w! * (4c*w!)^c * (w*2^{l*w})^w.
/// Returns true iff the measured (c, w) satisfy the inequality (evaluated in
/// log-space to avoid overflow).
[[nodiscard]] bool lemma6_satisfied(std::uint64_t n, int l, int c, int w);

/// Section 2.4 corollary: with atomicity l and contention-free step
/// complexity c, some process must access shared *bits* at least l + c - 1
/// times in the absence of contention.
[[nodiscard]] int min_contention_free_bit_accesses(int l, int c);

/// --- Naming (Section 3). ---

/// Theorem 4.1: with test-and-flip, worst-case step complexity log n.
[[nodiscard]] int thm4_taf_wc_step(std::uint64_t n);
/// Theorem 4.2: with test-and-set + test-and-reset, worst-case register
/// complexity log n.
[[nodiscard]] int thm4_tastar_wc_register(std::uint64_t n);
/// Theorem 4.3: with test-and-set, worst-case step complexity n - 1.
[[nodiscard]] std::uint64_t thm4_tas_wc_step(std::uint64_t n);
/// Theorem 4.4: with test-and-set + read, contention-free step complexity
/// log n.
[[nodiscard]] int thm4_tasread_cf_step(std::uint64_t n);

/// Theorem 5: in *every* model, contention-free register complexity of
/// naming is at least log n.
[[nodiscard]] int thm5_cf_register_lower(std::uint64_t n);

/// Theorem 6: in every model without test-and-flip, worst-case step
/// complexity of naming is at least n - 1.
[[nodiscard]] std::uint64_t thm6_wc_step_lower(std::uint64_t n);

/// Theorem 7: in the {test-and-set} model, contention-free register
/// complexity of naming is at least n - 1.
[[nodiscard]] std::uint64_t thm7_tas_cf_register_lower(std::uint64_t n);

}  // namespace cfc::bounds

#endif  // CFC_CORE_BOUNDS_H
