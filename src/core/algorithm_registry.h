#ifndef CFC_CORE_ALGORITHM_REGISTRY_H
#define CFC_CORE_ALGORITHM_REGISTRY_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/contention_detection.h"
#include "memory/model.h"
#include "mutex/mutex_algorithm.h"
#include "naming/naming_algorithm.h"

namespace cfc {

/// Metadata describing one registered algorithm (or one instantiation of a
/// parameterized family, e.g. the Theorem 3 tree at a fixed atomicity l).
struct AlgorithmInfo {
  /// Unique key within the algorithm's kind, e.g. "lamport-fast",
  /// "thm3-paper-l2". Registry enumeration is sorted by this name, so
  /// every consumer sees the same deterministic order.
  std::string name;
  std::string description;
  /// Naming algorithms: the weakest bit-operation model required. Mutex
  /// and detector algorithms in the register model leave this empty.
  Model required_model;
  /// Parameterized families: the atomicity parameter l this entry was
  /// instantiated at (0 when not applicable / n-dependent).
  int atomicity_param = 0;
  /// Largest n the algorithm supports (0 = any). Two-process primitives
  /// (Peterson, Kessels arbiter) set 2.
  int max_n = 0;
  /// True when capacity is restricted to powers of two (tree algorithms).
  bool pow2_n_only = false;
  /// Free-form labels for enumeration filters, e.g. "paper", "thm3-paper",
  /// "thm3-exact", "tournament".
  std::vector<std::string> tags;

  [[nodiscard]] bool has_tag(std::string_view tag) const;

  /// Fluent construction, e.g.
  ///   AlgorithmInfo::named("kessels-2p").desc("...").capacity_limit(2)
  ///       .tag("two-process")
  [[nodiscard]] static AlgorithmInfo named(std::string name);
  [[nodiscard]] AlgorithmInfo&& desc(std::string d) &&;
  [[nodiscard]] AlgorithmInfo&& model(Model m) &&;
  [[nodiscard]] AlgorithmInfo&& atomicity(int l) &&;
  [[nodiscard]] AlgorithmInfo&& capacity_limit(int n) &&;
  [[nodiscard]] AlgorithmInfo&& pow2_only() &&;
  [[nodiscard]] AlgorithmInfo&& tag(std::string t) &&;
};

struct MutexAlgorithmEntry {
  AlgorithmInfo info;
  MutexFactory factory;
};

struct NamingAlgorithmEntry {
  AlgorithmInfo info;
  NamingFactory factory;
};

struct DetectorAlgorithmEntry {
  AlgorithmInfo info;
  DetectorFactory factory;
};

/// Central catalogue of every algorithm the repository implements, keyed by
/// kind (mutex / naming / detector) and name. Implementations self-register
/// via the *Registrar helpers at the bottom of their translation units, so
/// benches, examples, the model census, and the experiment engine enumerate
/// algorithms from one place instead of duplicating hard-coded lists.
///
/// The registry is populated during static initialization and treated as
/// read-only afterwards; enumeration order is the lexicographic order of
/// entry names (deterministic across runs and thread counts).
class AlgorithmRegistry {
 public:
  [[nodiscard]] static AlgorithmRegistry& instance();

  /// --- Registration (throws std::logic_error on duplicate names). ---
  void add_mutex(AlgorithmInfo info, MutexFactory factory);
  void add_naming(AlgorithmInfo info, NamingFactory factory);
  void add_detector(AlgorithmInfo info, DetectorFactory factory);

  /// --- Lookup by exact name (throws std::out_of_range if absent). ---
  [[nodiscard]] const MutexAlgorithmEntry& mutex(std::string_view name) const;
  [[nodiscard]] const NamingAlgorithmEntry& naming(
      std::string_view name) const;
  [[nodiscard]] const DetectorAlgorithmEntry& detector(
      std::string_view name) const;

  /// --- Enumeration, sorted by name. Empty tag = all entries. ---
  [[nodiscard]] std::vector<const MutexAlgorithmEntry*> mutex_algorithms(
      std::string_view tag = {}) const;
  [[nodiscard]] std::vector<const NamingAlgorithmEntry*> naming_algorithms(
      std::string_view tag = {}) const;
  [[nodiscard]] std::vector<const DetectorAlgorithmEntry*>
  detector_algorithms(std::string_view tag = {}) const;

  /// Naming algorithms runnable in `m`: entries whose required model is a
  /// subset of `m` (the paper's "legal in the column's model").
  [[nodiscard]] std::vector<const NamingAlgorithmEntry*> naming_for_model(
      Model m) const;

  /// Mutex algorithms usable at a given n (capacity and pow2 filters).
  [[nodiscard]] std::vector<const MutexAlgorithmEntry*> mutex_for_n(
      int n, std::string_view tag = {}) const;

 private:
  AlgorithmRegistry() = default;

  std::map<std::string, MutexAlgorithmEntry, std::less<>> mutex_;
  std::map<std::string, NamingAlgorithmEntry, std::less<>> naming_;
  std::map<std::string, DetectorAlgorithmEntry, std::less<>> detector_;
};

/// Static self-registration helpers: place one at file scope in the
/// algorithm's translation unit. (The build links the library as an object
/// library, so these are never dropped by the linker.)
struct MutexRegistrar {
  MutexRegistrar(AlgorithmInfo info, MutexFactory factory);
};
struct NamingRegistrar {
  NamingRegistrar(AlgorithmInfo info, NamingFactory factory);
};
struct DetectorRegistrar {
  DetectorRegistrar(AlgorithmInfo info, DetectorFactory factory);
};

}  // namespace cfc

#endif  // CFC_CORE_ALGORITHM_REGISTRY_H
