#include "core/contention_detection.h"

#include <stdexcept>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

Task<void> detector_driver(ProcessContext& ctx, Detector& d, int slot) {
  ctx.set_section(Section::Working);
  co_await d.detect(ctx, slot);
  ctx.set_section(Section::Done);
}

std::unique_ptr<Detector> setup_detection(Sim& sim, const DetectorFactory& make,
                                          int n) {
  if (sim.process_count() != 0) {
    throw std::invalid_argument("setup_detection requires an empty sim");
  }
  std::unique_ptr<Detector> det = make(sim.memory(), n);
  for (int slot = 0; slot < n; ++slot) {
    Detector* d = det.get();
    sim.spawn("d" + std::to_string(slot),
              [d, slot](ProcessContext& ctx) {
                return detector_driver(ctx, *d, slot);
              });
  }
  return det;
}

int count_winners(const Sim& sim) {
  int winners = 0;
  for (Pid p = 0; p < sim.process_count(); ++p) {
    if (sim.status(p) == ProcStatus::Done) {
      const std::optional<int> out = sim.output(p);
      if (!out.has_value()) {
        throw std::logic_error("terminated detector process has no output");
      }
      winners += (*out == 1) ? 1 : 0;
    }
  }
  return winners;
}

namespace {

/// Bits needed for 0-based ids 0..n-1, at least 1.
int id_bits(int n) {
  const int b = bounds::ceil_log2(static_cast<std::uint64_t>(n));
  return b < 1 ? 1 : b;
}

}  // namespace

SplitterTree::SplitterTree(RegisterFile& mem, int n, int l) : n_(n), l_(l) {
  if (n < 1) {
    throw std::invalid_argument("splitter tree needs n >= 1");
  }
  if (l < 1 || l > RegisterFile::kMaxWidth) {
    throw std::invalid_argument("splitter tree atomicity out of range");
  }
  d_ = bounds::ceil_div(id_bits(n), l);
  // Allocate the trie nodes actually reachable by ids 0..n-1.
  for (int id = 0; id < n; ++id) {
    for (int level = 0; level < d_; ++level) {
      const Value prefix = prefix_at(static_cast<Value>(id), level);
      const auto key = std::make_pair(level, prefix);
      if (nodes_.count(key) > 0) {
        continue;
      }
      const std::string tag =
          "splitter.L" + std::to_string(level) + "." + std::to_string(prefix);
      Node node;
      node.x = mem.add_register(tag + ".x", l);
      node.y = mem.add_bit(tag + ".y");
      nodes_.emplace(key, node);
    }
  }
}

Value SplitterTree::chunk_at(Value id, int level) const {
  const unsigned shift = static_cast<unsigned>((d_ - 1 - level) * l_);
  const Value mask =
      (l_ >= RegisterFile::kMaxWidth) ? ~Value{0} : ((Value{1} << l_) - 1);
  return (id >> shift) & mask;
}

Value SplitterTree::prefix_at(Value id, int level) const {
  const int shift_chunks = d_ - level;
  const unsigned shift = static_cast<unsigned>(shift_chunks * l_);
  return shift >= 64 ? 0 : (id >> shift);
}

Task<void> SplitterTree::detect(ProcessContext& ctx, int slot) {
  const auto id = static_cast<Value>(slot);
  // Climb from the deepest node (level d-1) to the root (level 0), running
  // one splitter per node with the node-local value chunk_at(id, level).
  for (int level = d_ - 1; level >= 0; --level) {
    const Node node = nodes_.at({level, prefix_at(id, level)});
    const Value c = chunk_at(id, level);
    co_await ctx.write(node.x, c);
    if (co_await ctx.read(node.y) != 0) {
      ctx.set_output(0);
      co_return;
    }
    co_await ctx.write(node.y, 1);
    if (co_await ctx.read(node.x) != c) {
      ctx.set_output(0);
      co_return;
    }
  }
  ctx.set_output(1);
}

std::string SplitterTree::algorithm_name() const {
  return "splitter-tree(l=" + std::to_string(l_) + ")";
}

DetectorFactory SplitterTree::factory(int l) {
  return [l](RegisterFile& mem, int n) {
    return std::make_unique<SplitterTree>(mem, n, l);
  };
}

DetectorFactory SplitterTree::factory_full_width() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<SplitterTree>(mem, n, id_bits(n));
  };
}

SelfishDetector::SelfishDetector(RegisterFile& mem, int n) : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("detector needs n >= 1");
  }
  own_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    own_.push_back(mem.add_bit("selfish.b" + std::to_string(i)));
  }
}

Task<void> SelfishDetector::detect(ProcessContext& ctx, int slot) {
  const RegId mine = own_[static_cast<std::size_t>(slot)];
  co_await ctx.write(mine, 1);
  // Reads only its own register: Lemma 2's condition fails for every pair,
  // so the merge adversary can hide two processes from each other.
  const Value seen = co_await ctx.read(mine);
  ctx.set_output(seen != 0 ? 1 : 0);
}

DetectorFactory SelfishDetector::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<SelfishDetector>(mem, n);
  };
}

namespace {
/// The direct detectors of the Section 2.6 remark, at the atomicities the
/// benches sweep. (SelfishDetector is deliberately broken and therefore
/// not registered: registry enumeration only yields correct algorithms.)
const struct SplitterTreeRegistrar {
  SplitterTreeRegistrar() {
    for (const int l : {1, 2, 4}) {
      AlgorithmRegistry::instance().add_detector(
          AlgorithmInfo::named("splitter-tree-l" + std::to_string(l))
              .desc("splitter trie of arity 2^l: worst-case step "
                    "complexity 4*ceil(log n / l), bounded")
              .atomicity(l)
              .tag("splitter"),
          SplitterTree::factory(l));
    }
    AlgorithmRegistry::instance().add_detector(
        AlgorithmInfo::named("splitter-tree-full")
            .desc("single-level splitter at atomicity ceil(log2 n): "
                  "Lamport's fast path as a contention detector")
            .tag("splitter"),
        SplitterTree::factory_full_width());
  }
} kSplitterTreeRegistrar;
}  // namespace

}  // namespace cfc
