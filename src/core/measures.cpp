#include "core/measures.h"

#include <algorithm>
#include <ostream>
#include <set>

namespace cfc {

ComplexityReport ComplexityReport::max_with(const ComplexityReport& o) const {
  ComplexityReport r;
  r.steps = std::max(steps, o.steps);
  r.registers = std::max(registers, o.registers);
  r.read_steps = std::max(read_steps, o.read_steps);
  r.write_steps = std::max(write_steps, o.write_steps);
  r.read_registers = std::max(read_registers, o.read_registers);
  r.write_registers = std::max(write_registers, o.write_registers);
  r.atomicity = std::max(atomicity, o.atomicity);
  r.truncated = truncated || o.truncated;
  return r;
}

ComplexityReport ComplexityReport::plus(const ComplexityReport& o) const {
  ComplexityReport r;
  r.steps = steps + o.steps;
  r.registers = registers + o.registers;
  r.read_steps = read_steps + o.read_steps;
  r.write_steps = write_steps + o.write_steps;
  r.read_registers = read_registers + o.read_registers;
  r.write_registers = write_registers + o.write_registers;
  r.atomicity = std::max(atomicity, o.atomicity);
  r.truncated = truncated || o.truncated;
  return r;
}

std::ostream& operator<<(std::ostream& os, const ComplexityReport& r) {
  return os << "{steps=" << r.steps << ", registers=" << r.registers
            << ", reads=" << r.read_steps << ", writes=" << r.write_steps
            << ", atomicity=" << r.atomicity
            << (r.truncated ? ", truncated" : "") << "}";
}

ComplexityReport measure(const Trace& trace, Pid pid, SeqRange window) {
  ComplexityReport rep;
  std::set<RegId> regs;
  std::set<RegId> read_regs;
  std::set<RegId> write_regs;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.seq < window.begin || ev.seq >= window.end) {
      continue;
    }
    if (ev.kind != TraceEvent::Kind::Access || ev.pid != pid) {
      continue;
    }
    const Access& a = ev.access;
    rep.steps += 1;
    regs.insert(a.reg);
    if (a.is_read()) {
      rep.read_steps += 1;
      read_regs.insert(a.reg);
    }
    if (a.is_write()) {
      rep.write_steps += 1;
      write_regs.insert(a.reg);
    }
    rep.atomicity = std::max(rep.atomicity, a.width);
  }
  rep.registers = static_cast<int>(regs.size());
  rep.read_registers = static_cast<int>(read_regs.size());
  rep.write_registers = static_cast<int>(write_regs.size());
  return rep;
}

ComplexityReport measure_all(const Trace& trace, Pid pid) {
  return measure(trace, pid, SeqRange{0, trace.next_seq()});
}

namespace {

/// Replays section changes, invoking `fn(seq_of_event, pid, from, to)` for
/// each transition in order.
template <class Fn>
void replay_sections(const Trace& trace, Fn&& fn) {
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::SectionChange) {
      fn(ev.seq, ev.pid, ev.from, ev.to);
    }
  }
}

}  // namespace

std::vector<SeqRange> contention_free_sessions(const Trace& trace, Pid pid,
                                               int nprocs) {
  std::vector<SeqRange> out;
  std::vector<Section> section(static_cast<std::size_t>(nprocs),
                               Section::Remainder);
  bool in_window = false;
  bool window_clean = false;
  Seq window_begin = 0;

  auto others_in_remainder = [&]() {
    for (int q = 0; q < nprocs; ++q) {
      if (q != pid && section[static_cast<std::size_t>(q)] !=
                          Section::Remainder) {
        return false;
      }
    }
    return true;
  };

  replay_sections(trace, [&](Seq seq, Pid p, Section /*from*/, Section to) {
    if (p == pid) {
      if (to == Section::Entry && !in_window) {
        in_window = true;
        window_clean = others_in_remainder();
        window_begin = seq;
      } else if (to == Section::Remainder && in_window) {
        if (window_clean && others_in_remainder()) {
          out.push_back(SeqRange{window_begin, seq + 1});
        }
        in_window = false;
      }
    } else {
      if (to != Section::Remainder && in_window) {
        window_clean = false;  // interference: not a contention-free session
      }
      section[static_cast<std::size_t>(p)] = to;
    }
  });
  return out;
}

std::vector<SeqRange> clean_entry_windows(const Trace& trace, Pid pid,
                                          int nprocs) {
  std::vector<SeqRange> out;
  std::vector<Section> section(static_cast<std::size_t>(nprocs),
                               Section::Remainder);
  bool in_window = false;
  bool window_clean = false;
  Seq window_begin = 0;

  auto nobody_in_cs_or_exit = [&]() {
    for (int q = 0; q < nprocs; ++q) {
      const Section s = section[static_cast<std::size_t>(q)];
      if (s == Section::Critical || s == Section::Exit) {
        return false;
      }
    }
    return true;
  };

  replay_sections(trace, [&](Seq seq, Pid p, Section /*from*/, Section to) {
    if (p == pid && to == Section::Entry) {
      section[static_cast<std::size_t>(p)] = to;
      in_window = true;
      window_begin = seq;
      window_clean = nobody_in_cs_or_exit();
      return;
    }
    if (p == pid && to == Section::Critical && in_window) {
      if (window_clean) {
        out.push_back(SeqRange{window_begin, seq});
      }
      in_window = false;
      section[static_cast<std::size_t>(p)] = to;
      return;
    }
    section[static_cast<std::size_t>(p)] = to;
    if (in_window && (to == Section::Critical || to == Section::Exit)) {
      window_clean = false;  // someone reached CS/exit inside the window
    }
  });
  return out;
}

std::vector<SeqRange> exit_windows(const Trace& trace, Pid pid) {
  std::vector<SeqRange> out;
  bool in_window = false;
  Seq window_begin = 0;
  replay_sections(trace, [&](Seq seq, Pid p, Section from, Section to) {
    if (p != pid) {
      return;
    }
    if (from == Section::Critical && to == Section::Exit) {
      in_window = true;
      window_begin = seq;
    } else if (to == Section::Remainder && in_window) {
      out.push_back(SeqRange{window_begin, seq + 1});
      in_window = false;
    }
  });
  return out;
}

ComplexityReport max_over_windows(const Trace& trace, Pid pid,
                                  const std::vector<SeqRange>& windows) {
  ComplexityReport best;
  for (const SeqRange& w : windows) {
    best = best.max_with(measure(trace, pid, w));
  }
  return best;
}

}  // namespace cfc
