#include "core/json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace cfc::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  Node parse() {
    Node node = value();
    skip_ws();
    if (pos_ != src_.size()) {
      fail("trailing content");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::invalid_argument(std::string("JSON parse error at ") +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\n' || src_[pos_] == '\t' ||
            src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= src_.size()) {
      fail("unexpected end of input");
    }
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  Node value() {
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_node();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  Node object() {
    Node node;
    node.type = Node::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return node;
    }
    while (true) {
      Node key = string_node();
      expect(':');
      node.object.emplace(key.text, value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return node;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  Node array() {
    Node node;
    node.type = Node::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return node;
    }
    while (true) {
      node.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return node;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  Node string_node() {
    Node node;
    node.type = Node::Type::String;
    expect('"');
    while (true) {
      if (pos_ >= src_.size()) {
        fail("unterminated string");
      }
      const char c = src_[pos_++];
      if (c == '"') {
        return node;
      }
      if (c != '\\') {
        node.text += c;
        continue;
      }
      if (pos_ >= src_.size()) {
        fail("unterminated escape");
      }
      const char esc = src_[pos_++];
      switch (esc) {
        case '"':
          node.text += '"';
          break;
        case '\\':
          node.text += '\\';
          break;
        case '/':
          node.text += '/';
          break;
        case 'n':
          node.text += '\n';
          break;
        case 't':
          node.text += '\t';
          break;
        case 'r':
          node.text += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > src_.size()) {
            fail("truncated \\u escape");
          }
          unsigned long code = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = src_[pos_ + static_cast<std::size_t>(d)];
            if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
              fail("non-hex digit in \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned long>(
                       h <= '9' ? h - '0'
                                : (h | 0x20) - 'a' + 10);
          }
          pos_ += 4;
          // The canonical serializers only emit \u00xx control codes;
          // higher code points would be silently corrupted by the
          // single-byte decode below, so reject them loudly.
          if (code > 0xff) {
            fail("\\u escape beyond \\u00ff unsupported");
          }
          node.text += static_cast<char>(code);
          break;
        }
        default:
          fail("unsupported escape");
      }
    }
  }

  Node boolean() {
    Node node;
    node.type = Node::Type::Bool;
    if (src_.compare(pos_, 4, "true") == 0) {
      node.boolean = true;
      pos_ += 4;
    } else if (src_.compare(pos_, 5, "false") == 0) {
      node.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return node;
  }

  Node null() {
    if (src_.compare(pos_, 4, "null") != 0) {
      fail("bad literal");
    }
    pos_ += 4;
    return Node{};
  }

  Node number() {
    Node node;
    node.type = Node::Type::Number;
    const std::size_t start = pos_;
    if (pos_ < src_.size() && src_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0 ||
            src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
            src_[pos_] == '+' || src_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a number");
    }
    node.text = src_.substr(start, pos_ - start);
    return node;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

[[noreturn]] void fail_type(const char* expected) {
  throw std::invalid_argument(std::string("JSON: expected ") + expected);
}

}  // namespace

const Node* Node::find(const char* key) const {
  if (type != Type::Object) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Node parse(const std::string& src) { return Parser(src).parse(); }

const Node& member(const Node& obj, const char* key) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    throw std::invalid_argument(std::string("JSON: missing field '") + key +
                                "'");
  }
  return it->second;
}

int to_int(const Node& n) {
  if (n.type != Node::Type::Number) {
    fail_type("a number");
  }
  return static_cast<int>(std::strtol(n.text.c_str(), nullptr, 10));
}

std::uint64_t to_u64(const Node& n) {
  if (n.type != Node::Type::Number) {
    fail_type("a number");
  }
  return std::strtoull(n.text.c_str(), nullptr, 10);
}

double to_double(const Node& n) {
  if (n.type != Node::Type::Number) {
    fail_type("a number");
  }
  return std::strtod(n.text.c_str(), nullptr);
}

bool to_bool(const Node& n) {
  if (n.type != Node::Type::Bool) {
    fail_type("a boolean");
  }
  return n.boolean;
}

const std::string& to_string_field(const Node& n) {
  if (n.type != Node::Type::String) {
    fail_type("a string");
  }
  return n.text;
}

}  // namespace cfc::json
