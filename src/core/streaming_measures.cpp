#include "core/streaming_measures.h"

#include <algorithm>
#include <stdexcept>

#include "memory/fingerprint.h"

namespace cfc {

void MeasureAccumulator::ReportAcc::add(const Access& a) {
  rep.steps += 1;
  regs.insert(a.reg);
  if (a.is_read()) {
    rep.read_steps += 1;
    read_regs.insert(a.reg);
  }
  if (a.is_write()) {
    rep.write_steps += 1;
    write_regs.insert(a.reg);
  }
  rep.atomicity = std::max(rep.atomicity, a.width);
  // Everything counted above is a function of (reg, kind, bit_op, width);
  // summing their mixes gives an order-independent, repetition-sensitive
  // state hash maintained O(1) per access.
  multiset_hash += fp_mix((static_cast<std::uint64_t>(a.reg) << 24) |
                          (static_cast<std::uint64_t>(a.width) << 16) |
                          (static_cast<std::uint64_t>(a.bit_op) << 8) |
                          static_cast<std::uint64_t>(a.kind));
}

void MeasureAccumulator::ReportAcc::reset() {
  rep = ComplexityReport{};
  regs.clear();
  read_regs.clear();
  write_regs.clear();
  multiset_hash = 0;
}

ComplexityReport MeasureAccumulator::ReportAcc::report() const {
  ComplexityReport out = rep;
  out.registers = static_cast<int>(regs.size());
  out.read_registers = static_cast<int>(read_regs.size());
  out.write_registers = static_cast<int>(write_regs.size());
  return out;
}

namespace {

std::uint64_t report_digest(const ComplexityReport& r) {
  std::uint64_t h = fp_mix(0x5e9047c3ULL);
  h = fp_push(h, static_cast<std::uint64_t>(r.steps));
  h = fp_push(h, static_cast<std::uint64_t>(r.registers));
  h = fp_push(h, static_cast<std::uint64_t>(r.read_steps));
  h = fp_push(h, static_cast<std::uint64_t>(r.write_steps));
  h = fp_push(h, static_cast<std::uint64_t>(r.read_registers));
  h = fp_push(h, static_cast<std::uint64_t>(r.write_registers));
  h = fp_push(h, static_cast<std::uint64_t>(r.atomicity));
  return h;
}

std::uint64_t window_state_digest(bool open, bool clean,
                                  std::uint64_t acc_digest) {
  std::uint64_t h = fp_mix(0x77a1ULL);
  h = fp_push(h, (open ? 2u : 0u) | (clean ? 1u : 0u));
  if (open) {
    h = fp_push(h, acc_digest);
  }
  return h;
}

}  // namespace

std::uint64_t MeasureAccumulator::ReportAcc::digest() const {
  return fp_push(fp_mix(0x5e9047c3ULL), multiset_hash);
}

namespace {

std::size_t checked_nprocs(int nprocs) {
  if (nprocs < 1) {
    throw std::invalid_argument("MeasureAccumulator needs nprocs >= 1");
  }
  return static_cast<std::size_t>(nprocs);
}

}  // namespace

namespace {

// Slot namespaces for the XOR-combined digest contributions: windows,
// totals, and sections must not cancel against each other.
constexpr std::uint64_t kWindowSlot = 0x10000;
constexpr std::uint64_t kTotalSlot = 0x20000;
constexpr std::uint64_t kSectionSlot = 0x30000;

std::uint64_t section_slot(Pid pid, Section s) {
  return fp_slot(kSectionSlot + static_cast<std::uint64_t>(pid),
                 static_cast<std::uint64_t>(s));
}

}  // namespace

MeasureAccumulator::MeasureAccumulator(int nprocs)
    : per_pid_(checked_nprocs(nprocs)),
      section_(static_cast<std::size_t>(nprocs), Section::Remainder) {
  for (Pid pid = 0; pid < nprocs; ++pid) {
    refresh_max_hash(pid);
    refresh_window_contrib(pid);
    refresh_total_contrib(pid);
    section_hash_ ^= section_slot(pid, Section::Remainder);
  }
}

const MeasureAccumulator::PerPid& MeasureAccumulator::at(Pid pid) const {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("MeasureAccumulator: bad pid");
  }
  return per_pid_[static_cast<std::size_t>(pid)];
}

MeasureAccumulator::PerPid& MeasureAccumulator::at(Pid pid) {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("MeasureAccumulator: bad pid");
  }
  return per_pid_[static_cast<std::size_t>(pid)];
}

bool MeasureAccumulator::others_in_remainder(Pid pid) const {
  for (Pid q = 0; q < process_count(); ++q) {
    if (q != pid && section_[static_cast<std::size_t>(q)] !=
                        Section::Remainder) {
      return false;
    }
  }
  return true;
}

bool MeasureAccumulator::nobody_in_cs_or_exit() const {
  for (const Section s : section_) {
    if (s == Section::Critical || s == Section::Exit) {
      return false;
    }
  }
  return true;
}

void MeasureAccumulator::on_event(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEvent::Kind::Access:
      on_access(ev);
      break;
    case TraceEvent::Kind::SectionChange:
      on_section_change(ev);
      break;
    case TraceEvent::Kind::Crash:
    case TraceEvent::Kind::Finish:
      break;  // terminal events carry no measured cost
  }
}

void MeasureAccumulator::on_access(const TraceEvent& ev) {
  PerPid& pp = at(ev.pid);
  pp.total.add(ev.access);
  pp.total_dirty = true;
  if (pp.cf_session.open) {
    pp.cf_session.acc.add(ev.access);
  }
  if (pp.clean_entry.open) {
    pp.clean_entry.acc.add(ev.access);
  }
  if (pp.exit.open) {
    pp.exit.acc.add(ev.access);
  }
  if (pp.cf_session.open || pp.clean_entry.open || pp.exit.open) {
    pp.window_dirty = true;
  }
}

void MeasureAccumulator::on_section_change(const TraceEvent& ev) {
  const Pid p = ev.pid;
  const Section to = ev.to;

  // --- Contention-free sessions (measures.h contention_free_sessions):
  // a session of q opens at q's Remainder->Entry, closes at its next
  // ->Remainder, and counts only if every other process stayed in its
  // remainder region throughout. The trace-based code checks the others'
  // sections *before* applying this event's update, so run this block
  // first.
  for (Pid q = 0; q < process_count(); ++q) {
    WindowState& w = per_pid_[static_cast<std::size_t>(q)].cf_session;
    if (q == p) {
      if (to == Section::Entry && !w.open) {
        w.open = true;
        w.clean = others_in_remainder(q);
        w.acc.reset();
      } else if (to == Section::Remainder && w.open) {
        PerPid& pp = per_pid_[static_cast<std::size_t>(q)];
        if (w.clean && others_in_remainder(q)) {
          pp.cf_session_max = pp.cf_session_max.max_with(w.acc.report());
          pp.cf_sessions_completed += 1;
          refresh_max_hash(q);
        }
        w.open = false;
      }
    } else if (w.open && to != Section::Remainder) {
      w.clean = false;  // interference: not a contention-free session
    }
  }

  section_hash_ ^= section_slot(p, section_[static_cast<std::size_t>(p)]) ^
                   section_slot(p, to);
  section_[static_cast<std::size_t>(p)] = to;

  // --- Clean entry windows (measures.h clean_entry_windows): open at
  // Remainder->Entry, close at Entry->Critical, clean iff no process is in
  // its CS or exit code anywhere in the window. The trace-based code
  // applies the section update first, so this block runs after it.
  for (Pid q = 0; q < process_count(); ++q) {
    WindowState& w = per_pid_[static_cast<std::size_t>(q)].clean_entry;
    if (q == p && to == Section::Entry) {
      w.open = true;
      w.clean = nobody_in_cs_or_exit();
      w.acc.reset();
    } else if (q == p && to == Section::Critical && w.open) {
      if (w.clean) {
        PerPid& pp = per_pid_[static_cast<std::size_t>(q)];
        pp.clean_entry_max = pp.clean_entry_max.max_with(w.acc.report());
        refresh_max_hash(q);
      }
      w.open = false;
    } else if (w.open &&
               (to == Section::Critical || to == Section::Exit)) {
      w.clean = false;  // someone reached CS/exit inside the window
    }
  }

  // --- Exit windows (measures.h exit_windows): Critical->Exit to
  // ->Remainder, own transitions only, always counted.
  {
    WindowState& w = at(p).exit;
    if (ev.from == Section::Critical && to == Section::Exit) {
      w.open = true;
      w.acc.reset();
    } else if (to == Section::Remainder && w.open) {
      PerPid& pp = at(p);
      pp.exit_max = pp.exit_max.max_with(w.acc.report());
      refresh_max_hash(p);
      w.open = false;
    }
  }

  // A section change can flip window/clean state for any process (the
  // loops above observe every q); flag all contributions. Rare next to
  // accesses, so even the eager alternative would be off the hot path.
  for (PerPid& pp : per_pid_) {
    pp.window_dirty = true;
  }
}

void MeasureAccumulator::refresh_window_contrib(Pid pid) const {
  const PerPid& pp = per_pid_[static_cast<std::size_t>(pid)];
  std::uint64_t h = fp_mix(0x77bdc211ULL);
  h = fp_push(h, window_state_digest(pp.cf_session.open, pp.cf_session.clean,
                                     pp.cf_session.acc.digest()));
  h = fp_push(h, window_state_digest(pp.clean_entry.open,
                                     pp.clean_entry.clean,
                                     pp.clean_entry.acc.digest()));
  h = fp_push(h, window_state_digest(pp.exit.open, pp.exit.clean,
                                     pp.exit.acc.digest()));
  h = fp_push(h, pp.max_hash);
  pp.window_contrib =
      fp_slot(kWindowSlot + static_cast<std::uint64_t>(pid), h);
  pp.window_dirty = false;
}

void MeasureAccumulator::refresh_total_contrib(Pid pid) const {
  const PerPid& pp = per_pid_[static_cast<std::size_t>(pid)];
  pp.total_contrib = fp_slot(kTotalSlot + static_cast<std::uint64_t>(pid),
                             pp.total.digest());
  pp.total_dirty = false;
}

void MeasureAccumulator::refresh_max_hash(Pid pid) {
  PerPid& pp = per_pid_[static_cast<std::size_t>(pid)];
  std::uint64_t h = report_digest(pp.cf_session_max);
  h = fp_push(h, report_digest(pp.clean_entry_max));
  h = fp_push(h, report_digest(pp.exit_max));
  h = fp_push(h, static_cast<std::uint64_t>(pp.cf_sessions_completed));
  pp.max_hash = h;
}

ComplexityReport MeasureAccumulator::total(Pid pid) const {
  ComplexityReport r = at(pid).total.report();
  r.truncated = r.truncated || truncated_;
  return r;
}

ComplexityReport MeasureAccumulator::contention_free_session_max(
    Pid pid) const {
  ComplexityReport r = at(pid).cf_session_max;
  r.truncated = r.truncated || truncated_;
  return r;
}

ComplexityReport MeasureAccumulator::clean_entry_max(Pid pid) const {
  ComplexityReport r = at(pid).clean_entry_max;
  r.truncated = r.truncated || truncated_;
  return r;
}

ComplexityReport MeasureAccumulator::exit_max(Pid pid) const {
  ComplexityReport r = at(pid).exit_max;
  r.truncated = r.truncated || truncated_;
  return r;
}

int MeasureAccumulator::contention_free_session_count(Pid pid) const {
  return at(pid).cf_sessions_completed;
}

std::uint64_t MeasureAccumulator::window_digest() const {
  // Near-read: between two explorer nodes one access happened, so at most
  // one contribution (plus section changes, rare) needs a refresh.
  std::uint64_t h = fp_mix(0x3a17bd02ULL) ^ section_hash_;
  for (Pid pid = 0; pid < process_count(); ++pid) {
    const PerPid& pp = per_pid_[static_cast<std::size_t>(pid)];
    if (pp.window_dirty) {
      refresh_window_contrib(pid);
    }
    h ^= pp.window_contrib;
  }
  return h;
}

std::uint64_t MeasureAccumulator::digest() const {
  std::uint64_t h = window_digest();
  for (Pid pid = 0; pid < process_count(); ++pid) {
    const PerPid& pp = per_pid_[static_cast<std::size_t>(pid)];
    if (pp.total_dirty) {
      refresh_total_contrib(pid);
    }
    h ^= pp.total_contrib;
  }
  return h;
}

}  // namespace cfc
