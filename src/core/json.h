#ifndef CFC_CORE_JSON_H
#define CFC_CORE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cfc::json {

/// Minimal recursive-descent JSON reader shared by the study parser
/// (analysis/study.cpp), the bench-report differ (tools/cfc_report.cpp)
/// and the trace validator (obs/trace.cpp). Numbers keep their raw text so
/// 64-bit counters round-trip exactly; \u escapes are supported up to
/// \u00ff (the canonical serializers only emit control-code escapes).
/// parse() throws std::invalid_argument on malformed input.
struct Node {
  enum class Type { Object, Array, String, Number, Bool, Null };
  Type type = Type::Null;
  std::map<std::string, Node> object;
  std::vector<Node> array;
  std::string text;  ///< String value / Number raw text
  bool boolean = false;

  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const Node* find(const char* key) const;
};

[[nodiscard]] Node parse(const std::string& src);

/// Typed accessors: a mistyped field (a string where a number belongs, a
/// number where a bool belongs) is malformed input and throws
/// std::invalid_argument, never silently parses to 0/false.
[[nodiscard]] const Node& member(const Node& obj, const char* key);
[[nodiscard]] int to_int(const Node& n);
[[nodiscard]] std::uint64_t to_u64(const Node& n);
[[nodiscard]] double to_double(const Node& n);
[[nodiscard]] bool to_bool(const Node& n);
[[nodiscard]] const std::string& to_string_field(const Node& n);

}  // namespace cfc::json

#endif  // CFC_CORE_JSON_H
