#ifndef CFC_CORE_CONTENTION_DETECTION_H
#define CFC_CORE_CONTENTION_DETECTION_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "memory/register_file.h"
#include "sched/sim.h"
#include "sched/task.h"

namespace cfc {

/// The contention detection problem (Section 2.3): every activated process
/// terminates with an output in {0, 1} such that
///   * in every run, at most one process outputs 1, and
///   * in a run where only one process is activated, it outputs 1.
///
/// It is a single-shot mutual exclusion problem with weak deadlock freedom,
/// and carries all the paper's lower bounds (Lemma 1): any lower bound on a
/// time complexity of contention detection is a lower bound on the same
/// complexity of mutual exclusion.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Protocol body for the process occupying `slot` (0-based). Must finish
  /// by calling `ctx.set_output(0)` or `ctx.set_output(1)`.
  virtual Task<void> detect(ProcessContext& ctx, int slot) = 0;

  /// Maximum number of processes supported.
  [[nodiscard]] virtual int capacity() const = 0;

  /// Declared atomicity l (widest register accessed in one step).
  [[nodiscard]] virtual int atomicity() const = 0;

  [[nodiscard]] virtual std::string algorithm_name() const = 0;
};

/// Factory: allocates the detector's registers in `mem` for n processes.
using DetectorFactory =
    std::function<std::unique_ptr<Detector>(RegisterFile& mem, int n)>;

/// Standard driver: wraps Detector::detect with Working/Done bookkeeping.
/// Use as the body passed to Sim::spawn.
Task<void> detector_driver(ProcessContext& ctx, Detector& d, int slot);

/// Spawns n detector processes into `sim` (which must be empty) and returns
/// the detector instance. The usual setup step for detection experiments.
std::unique_ptr<Detector> setup_detection(Sim& sim, const DetectorFactory& make,
                                          int n);

/// Validates the safety condition over the outputs present in `sim`:
/// at most one process has output 1, and no terminated process lacks an
/// output. Returns the number of processes that output 1.
[[nodiscard]] int count_winners(const Sim& sim);

/// The splitter tree: a contention detector for n processes with atomicity
/// l (Section 2.6 remark that detection needs only O(ceil(log n / l))
/// worst-case steps, in contrast to mutual exclusion whose worst-case step
/// complexity is unbounded).
///
/// The construction is a trie of arity 2^l over the l-bit chunks of the
/// process id. Each trie node holds a one-shot *splitter* (the fast path of
/// Lamport's algorithm [Lam87]): an l-bit register x and a bit y; a visitor
/// writes its node-local value to x, loses if y is set, sets y, and wins the
/// node iff it reads its own value back from x. A process climbs from its
/// deepest node (full id prefix) to the root and outputs 1 iff it wins every
/// node on the way.
///
/// Why per-node values stay pairwise distinct (the splitter's safety
/// precondition): at the deepest level the contenders of a node share all id
/// chunks but the last, so their node-local values (the last chunk) differ;
/// at inner levels the contenders are winners of distinct children, and the
/// node-local value is the child index. A naive "write all id chunks into d
/// shared registers and read them back" detector is *unsound* for n > 2^l —
/// a third process can restore a chunk value that a second had overwritten —
/// which the adversarial tests demonstrate; the trie avoids that by never
/// letting two contenders of the same node carry the same value.
///
/// Worst-case step complexity: 4d, where d = ceil(max(1, log n) / l) levels.
/// Contention-free register complexity: 2d. Atomicity: l.
class SplitterTree final : public Detector {
 public:
  /// Allocates registers for up to n processes with atomicity l >= 1.
  SplitterTree(RegisterFile& mem, int n, int l);

  Task<void> detect(ProcessContext& ctx, int slot) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return l_; }
  [[nodiscard]] std::string algorithm_name() const override;

  /// Number of trie levels d = ceil(max(1, ceil_log2(n)) / l).
  [[nodiscard]] int depth() const { return d_; }

  [[nodiscard]] static DetectorFactory factory(int l);
  /// Single-level tree: Lamport's fast path at atomicity ceil(log2(n)).
  [[nodiscard]] static DetectorFactory factory_full_width();

 private:
  struct Node {
    RegId x = -1;
    RegId y = -1;
  };

  /// Node-local value of `id` at `level` (0 = root): the chunk just below
  /// the level's prefix.
  [[nodiscard]] Value chunk_at(Value id, int level) const;
  /// Trie prefix of `id` above `level` (node address at that level).
  [[nodiscard]] Value prefix_at(Value id, int level) const;

  int n_;
  int l_;
  int d_;
  std::map<std::pair<int, Value>, Node> nodes_;  // (level, prefix) -> regs
};

/// A deliberately *incorrect* detector used to demonstrate the Lemma 2
/// merge adversary: each process writes and reads only its own register, so
/// for every pair of processes the condition of Lemma 2 fails, and the
/// merge construction produces a run where two processes output 1.
class SelfishDetector final : public Detector {
 public:
  SelfishDetector(RegisterFile& mem, int n);

  Task<void> detect(ProcessContext& ctx, int slot) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int atomicity() const override { return 1; }
  [[nodiscard]] std::string algorithm_name() const override {
    return "selfish(broken)";
  }

  [[nodiscard]] static DetectorFactory factory();

 private:
  int n_;
  std::vector<RegId> own_;
};

}  // namespace cfc

#endif  // CFC_CORE_CONTENTION_DETECTION_H
