#include "sa/lint.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/contention_detection.h"
#include "memory/register_file.h"
#include "mutex/mutex_algorithm.h"
#include "naming/naming_algorithm.h"
#include "sa/static_summary.h"
#include "sched/sim.h"

namespace cfc {

const char* name(LintSeverity s) {
  return s == LintSeverity::Error ? "error" : "warning";
}

std::string LintDiagnostic::format() const {
  std::string out = name(severity);
  out += '[';
  out += rule;
  out += "] ";
  out += kind;
  out += '/';
  out += subject;
  out += ": ";
  out += message;
  return out;
}

bool has_errors(const std::vector<LintDiagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(),
                     [](const LintDiagnostic& d) {
                       return d.severity == LintSeverity::Error;
                     });
}

namespace {

/// Largest declared max_n the capacity rule instantiates at (every current
/// entry declares 0 or 2; the cap keeps a future mis-declared huge max_n
/// from turning the lint into a stress test).
constexpr int kMaxDeclaredProbe = 16;

int default_probe_n(const AlgorithmInfo& info) {
  // 2 is within every declared capacity (registration validates max_n >= 2
  // when set) and is a power of two, so the pow2 flag never blocks it.
  return info.max_n != 0 ? std::min(2, info.max_n) : 2;
}

void add(std::vector<LintDiagnostic>& out, LintSeverity sev,
         std::string rule, std::string kind, const std::string& subject,
         std::string message) {
  out.push_back(LintDiagnostic{sev, std::move(rule), std::move(kind),
                               subject, std::move(message)});
}

/// capacity-metadata: declared AlgorithmInfo vs the instances it builds.
/// `capacity_at` instantiates the factory at a given n and reports the
/// instance's capacity() (instantiation happens inside, per kind).
template <typename CapacityAt>
void lint_capacity(std::vector<LintDiagnostic>& out, const AlgorithmInfo& info,
                   const std::string& kind, int probe_n, int probe_capacity,
                   const CapacityAt& capacity_at) {
  if (probe_capacity < probe_n) {
    add(out, LintSeverity::Error, "capacity-metadata", kind, info.name,
        "capacity() at probe n=" + std::to_string(probe_n) + " is " +
            std::to_string(probe_capacity) + " < n");
  }
  if (info.pow2_n_only && info.max_n != 0 &&
      !std::has_single_bit(static_cast<unsigned>(info.max_n))) {
    add(out, LintSeverity::Error, "capacity-metadata", kind, info.name,
        "pow2_n_only is set but declared max_n=" +
            std::to_string(info.max_n) + " is not a power of two");
  }
  if (info.max_n > probe_n && info.max_n <= kMaxDeclaredProbe) {
    const int cap = capacity_at(info.max_n);
    if (cap < info.max_n) {
      add(out, LintSeverity::Error, "capacity-metadata", kind, info.name,
          "declared max_n=" + std::to_string(info.max_n) +
              " but capacity() at that size is " + std::to_string(cap));
    }
  }
}

/// dead-register: allocated but never touched by any collected unit.
/// Aggregated into one diagnostic per subject — tree algorithms allocate
/// their full structural layout and leave most of it untouched at a small
/// probe n, and a per-register warning would drown the report in hundreds
/// of lines.
void lint_dead_registers(std::vector<LintDiagnostic>& out,
                         const StaticModel& model, const RegisterFile& mem,
                         const std::string& kind,
                         const std::string& subject) {
  constexpr std::size_t kNamesShown = 4;
  std::vector<std::string> dead;
  for (RegId r = 0; r < static_cast<RegId>(mem.size()); ++r) {
    if (!model.facts(r).observed) {
      dead.emplace_back(mem.reg_name(r));
    }
  }
  if (dead.empty()) {
    return;
  }
  std::string msg = std::to_string(dead.size()) +
                    " register(s) never accessed by any collected unit at "
                    "probe n=" +
                    std::to_string(model.nprocs()) + ":";
  for (std::size_t i = 0; i < dead.size() && i < kNamesShown; ++i) {
    msg += " '" + dead[i] + "'";
  }
  if (dead.size() > kNamesShown) {
    msg += " (+" + std::to_string(dead.size() - kNamesShown) + " more)";
  }
  add(out, LintSeverity::Warning, "dead-register", kind, subject,
      std::move(msg));
}

/// atomicity-mismatch: some observed register is wider than the declared l.
void lint_atomicity(std::vector<LintDiagnostic>& out,
                    const StaticModel& model, const RegisterFile& mem,
                    int declared, const std::string& kind,
                    const std::string& subject) {
  for (RegId r = 0; r < static_cast<RegId>(mem.size()); ++r) {
    if (model.facts(r).observed && mem.width(r) > declared) {
      add(out, LintSeverity::Error, "atomicity-mismatch", kind, subject,
          "register '" + std::string(mem.reg_name(r)) + "' is " +
              std::to_string(mem.width(r)) +
              " bits wide but the declared atomicity is " +
              std::to_string(declared));
    }
  }
}

/// field-overlap: two write_field windows on one register that partially
/// overlap (identical or disjoint windows are the two sound layouts).
void lint_field_overlap(std::vector<LintDiagnostic>& out,
                        const StaticModel& model, const RegisterFile& mem,
                        const std::string& kind, const std::string& subject) {
  for (RegId r = 0; r < static_cast<RegId>(mem.size()); ++r) {
    const RegisterFacts& f = model.facts(r);
    for (std::size_t i = 0; i < f.field_windows.size(); ++i) {
      for (std::size_t j = i + 1; j < f.field_windows.size(); ++j) {
        const auto [s1, w1] = f.field_windows[i];
        const auto [s2, w2] = f.field_windows[j];
        const bool identical = s1 == s2 && w1 == w2;
        const bool disjoint = s1 + w1 <= s2 || s2 + w2 <= s1;
        if (!identical && !disjoint) {
          add(out, LintSeverity::Error, "field-overlap", kind, subject,
              "register '" + std::string(mem.reg_name(r)) +
                  "' has partially overlapping write_field windows [" +
                  std::to_string(s1) + "+" + std::to_string(w1) + ") and [" +
                  std::to_string(s2) + "+" + std::to_string(w2) + ")");
        }
      }
    }
  }
}

/// section-protocol: every solo run must terminate in Remainder/Done, and a
/// mutex solo run that entered its entry section must reach its exit
/// section (the windowed measures hang off that pairing).
void lint_sections(std::vector<LintDiagnostic>& out, const StaticModel& model,
                   bool expect_entry_exit, const std::string& kind,
                   const std::string& subject) {
  for (Pid p = 0; p < static_cast<Pid>(model.nprocs()); ++p) {
    const SoloOutcome& solo = model.solo_outcome(p);
    if (!solo.completed) {
      add(out, LintSeverity::Error, "section-protocol", kind, subject,
          "pid " + std::to_string(p) +
              " did not complete its solo run within the unit budget "
              "(stuck in section '" + std::string(name(solo.final_section)) +
              "' after " + std::to_string(solo.units) + " units)");
      continue;
    }
    if (solo.final_section != Section::Remainder &&
        solo.final_section != Section::Done) {
      add(out, LintSeverity::Error, "section-protocol", kind, subject,
          "pid " + std::to_string(p) + " terminated in section '" +
              std::string(name(solo.final_section)) +
              "' instead of Remainder/Done");
    }
    if (expect_entry_exit && solo.entered_entry && !solo.entered_exit) {
      add(out, LintSeverity::Error, "section-protocol", kind, subject,
          "pid " + std::to_string(p) +
              " entered its entry section but never reached the exit "
              "section");
    }
  }
}

}  // namespace

std::vector<LintDiagnostic> lint_mutex(const MutexAlgorithmEntry& entry,
                                       int probe_n) {
  std::vector<LintDiagnostic> out;
  const int n = probe_n > 0 ? probe_n : default_probe_n(entry.info);
  Sim probe;
  const auto alg = entry.factory(probe.memory(), n);
  const MutexFactory make = entry.factory;
  const StaticModel model = StaticModel::analyze(
      [make, n](Sim& sim) -> std::shared_ptr<void> {
        return setup_mutex(sim, make, n, /*sessions=*/1);
      },
      n);
  lint_capacity(out, entry.info, "mutex", n, alg->capacity(),
                [&](int at) {
                  Sim big;
                  return entry.factory(big.memory(), at)->capacity();
                });
  lint_dead_registers(out, model, probe.memory(), "mutex", entry.info.name);
  lint_atomicity(out, model, probe.memory(), alg->atomicity(), "mutex",
                 entry.info.name);
  lint_field_overlap(out, model, probe.memory(), "mutex", entry.info.name);
  lint_sections(out, model, /*expect_entry_exit=*/true, "mutex",
                entry.info.name);
  return out;
}

std::vector<LintDiagnostic> lint_naming(const NamingAlgorithmEntry& entry,
                                        int probe_n) {
  std::vector<LintDiagnostic> out;
  const int n = probe_n > 0 ? probe_n : default_probe_n(entry.info);
  Sim probe;
  const auto alg = entry.factory(probe.memory(), n);
  const NamingFactory make = entry.factory;
  const StaticModel model = StaticModel::analyze(
      [make, n](Sim& sim) -> std::shared_ptr<void> {
        return setup_naming(sim, make, n);
      },
      n);
  lint_capacity(out, entry.info, "naming", n, alg->capacity(),
                [&](int at) {
                  Sim big;
                  return entry.factory(big.memory(), at)->capacity();
                });
  lint_dead_registers(out, model, probe.memory(), "naming", entry.info.name);
  // Naming runs under the bit-model discipline: every register is one bit,
  // so there is no declared atomicity to cross-check.
  lint_field_overlap(out, model, probe.memory(), "naming", entry.info.name);
  lint_sections(out, model, /*expect_entry_exit=*/false, "naming",
                entry.info.name);
  return out;
}

std::vector<LintDiagnostic> lint_detector(const DetectorAlgorithmEntry& entry,
                                          int probe_n) {
  std::vector<LintDiagnostic> out;
  const int n = probe_n > 0 ? probe_n : default_probe_n(entry.info);
  Sim probe;
  const auto alg = entry.factory(probe.memory(), n);
  const DetectorFactory make = entry.factory;
  const StaticModel model = StaticModel::analyze(
      [make, n](Sim& sim) -> std::shared_ptr<void> {
        return setup_detection(sim, make, n);
      },
      n);
  lint_capacity(out, entry.info, "detector", n, alg->capacity(),
                [&](int at) {
                  Sim big;
                  return entry.factory(big.memory(), at)->capacity();
                });
  lint_dead_registers(out, model, probe.memory(), "detector",
                      entry.info.name);
  lint_atomicity(out, model, probe.memory(), alg->atomicity(), "detector",
                 entry.info.name);
  lint_field_overlap(out, model, probe.memory(), "detector",
                     entry.info.name);
  lint_sections(out, model, /*expect_entry_exit=*/false, "detector",
                entry.info.name);
  return out;
}

std::vector<LintDiagnostic> lint_registry() {
  std::vector<LintDiagnostic> out;
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  for (const MutexAlgorithmEntry* e : reg.mutex_algorithms()) {
    auto diags = lint_mutex(*e);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  for (const NamingAlgorithmEntry* e : reg.naming_algorithms()) {
    auto diags = lint_naming(*e);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  for (const DetectorAlgorithmEntry* e : reg.detector_algorithms()) {
    auto diags = lint_detector(*e);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  return out;
}

}  // namespace cfc
