#ifndef CFC_SA_LINT_H
#define CFC_SA_LINT_H

#include <string>
#include <vector>

#include "core/algorithm_registry.h"

namespace cfc {

/// --- Registry linter (sa/): structured diagnostics over the static
/// model. ---
///
/// Each registered algorithm is dry-run through the footprint pass
/// (sa/static_summary.h) at a small probe size and its static summary is
/// checked against the metadata the implementation declares: its
/// AlgorithmInfo entry, its capacity()/atomicity() accessors, and the
/// section protocol its driver is supposed to follow. The rules:
///
///   dead-register (Warning)      a register the factory allocated that no
///                                collected unit ever touched — dead
///                                weight in the complexity measures'
///                                denominator, usually a refactor leftover.
///   atomicity-mismatch (Error)   some access touched a register wider
///                                than the declared atomicity l; every
///                                atomicity-parameterized bound in the
///                                paper is stated against l, so an
///                                under-declared l silently inflates them.
///   field-overlap (Error)        two observed write_field windows on one
///                                register partially overlap. Windows must
///                                be identical or disjoint: a partial
///                                overlap makes the packed layout's
///                                per-field ownership ambiguous.
///   capacity-metadata (Error)    the declared AlgorithmInfo capacity
///                                metadata contradicts the instance:
///                                capacity() below the probe n or the
///                                declared max_n, or a pow2_n_only flag on
///                                an entry whose max_n is not a power of
///                                two.
///   section-protocol (Error)     a solo run got stuck inside the unit
///                                budget, or terminated outside
///                                Remainder/Done, or (mutex) entered its
///                                entry section without ever reaching the
///                                exit section — the driver's bookkeeping
///                                would mis-attribute every windowed
///                                measure.
///
/// Diagnostics are deterministic (registry order, pid order, register
/// order), so the CI run's output is stable across machines and thread
/// counts.

enum class LintSeverity {
  Warning,  ///< suspicious but measurement-safe; does not fail the lint
  Error,    ///< metadata/protocol contradiction; fails cfc_lint (exit 1)
};

[[nodiscard]] const char* name(LintSeverity s);

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::Warning;
  std::string rule;     ///< kebab-case rule id, e.g. "dead-register"
  std::string kind;     ///< "mutex" | "naming" | "detector"
  std::string subject;  ///< registry entry name
  std::string message;

  /// "error[atomicity-mismatch] mutex/foo: ..." — the CI-greppable form.
  [[nodiscard]] std::string format() const;
};

/// Lints one registered algorithm. `probe_n` <= 0 picks the default probe
/// size (2, clamped into the entry's declared capacity metadata).
[[nodiscard]] std::vector<LintDiagnostic> lint_mutex(
    const MutexAlgorithmEntry& entry, int probe_n = 0);
[[nodiscard]] std::vector<LintDiagnostic> lint_naming(
    const NamingAlgorithmEntry& entry, int probe_n = 0);
[[nodiscard]] std::vector<LintDiagnostic> lint_detector(
    const DetectorAlgorithmEntry& entry, int probe_n = 0);

/// Lints every entry of the global registry, in registry (name) order per
/// kind: mutex, then naming, then detector.
[[nodiscard]] std::vector<LintDiagnostic> lint_registry();

/// True iff some diagnostic is an Error.
[[nodiscard]] bool has_errors(const std::vector<LintDiagnostic>& diags);

}  // namespace cfc

#endif  // CFC_SA_LINT_H
