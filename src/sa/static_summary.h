#ifndef CFC_SA_STATIC_SUMMARY_H
#define CFC_SA_STATIC_SUMMARY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "memory/types.h"
#include "sched/run.h"

namespace cfc {

class Sim;

/// --- Static model analysis (the sa/ footprint pass). ---
///
/// The paper's contention-free structure makes the configured models highly
/// analyzable before the schedule-space search starts: each process's solo
/// execution enumerates its contention-free program points exactly, and a
/// small battery of prefix-perturbed two-process runs surfaces the
/// contended branches (spin loops, fast-path fallbacks) those solo runs
/// never reach. The pass dry-runs the exact configuration the Explorer
/// will search (same setup function, crash injection included) under an
/// instrumented recording sink and distills the observed scheduler units
/// into:
///
///  * per-register facts (RegisterFacts): which pids were seen reading /
///    writing, the union of written-bit masks per pid, and whether any
///    collected read/write unit on the register carried a section change;
///
///  * per-process first units (FirstUnit): the deterministic prologue of a
///    NotStarted process performs no shared access (it ends exactly at the
///    first access request), so its statically recorded first access is
///    exact — the refinement the POR layer uses for unstarted processes;
///
///  * per-process solo outcomes (SoloOutcome): protocol bookkeeping the
///    registry linter (sa/lint.h) reports on.
///
/// The merged table is the *static may-conflict table* consumed by
/// por/dependence.h's refined next_step_of: see the soundness discussion
/// there for which facts are provable (first units, crash units) and which
/// are empirically gated (section-quiet plain writes).

/// Statically recorded first scheduler unit of one process: prologue plus
/// first posted access (or prologue-only completion).
struct FirstUnit {
  bool known = false;
  /// The body completed (or posted a local yield) during its prologue:
  /// the first unit performs no shared-memory access.
  bool yield = false;
  /// The deterministic prologue emitted no section change. Load-bearing
  /// for soundness: a prologue that changes sections (e.g. the mutex
  /// session driver entering Entry) is observationally dependent with any
  /// concurrently *measured* step — the peer's section change flips the
  /// step's window cleanliness — which the register+section relation
  /// cannot see on the pending side. R1 therefore refines only
  /// quiet-prologue first units (see por/dependence.h).
  bool prologue_quiet = false;
  RegId reg = -1;      ///< valid iff known && !yield
  bool wrote = false;  ///< the first access can modify the register
};

/// Facts about one register, merged over every collected unit.
struct RegisterFacts {
  bool observed = false;          ///< some collected unit accessed it
  std::uint32_t reader_pids = 0;  ///< pids observed reading (bitmask)
  std::uint32_t writer_pids = 0;  ///< pids observed writing (bitmask)
  /// Some collected read / write unit on this register emitted a section
  /// change during its local run.
  bool read_section_adjacent = false;
  bool write_section_adjacent = false;
  /// Per-pid union of written-bit masks (Access::written_mask); sized
  /// nprocs. Sub-word stores contribute their field window only.
  std::vector<Value> written_fields_by_pid;
  /// Some write on this register was a sub-word (write_field) store.
  bool field_written = false;
  /// Observed write_field windows as (shift, width) pairs, deduplicated.
  std::vector<std::pair<int, int>> field_windows;
};

/// Protocol bookkeeping of one process's solo dry-run, for the linter.
struct SoloOutcome {
  bool completed = false;       ///< body finished within the unit budget
  bool entered_entry = false;   ///< was ever observed in Section::Entry
  bool entered_exit = false;    ///< was ever observed in Section::Exit
  Section final_section = Section::Remainder;
  std::uint64_t units = 0;      ///< scheduler units the solo run took
  int max_width_accessed = 0;   ///< widest register touched (atomicity)
};

/// The static may-conflict table for one Explorer configuration. Built
/// once per search (deterministically — same setup, same table); shared
/// read-only across worker threads.
class StaticModel {
 public:
  using SetupFn = std::function<std::shared_ptr<void>(Sim&)>;

  /// Runs the footprint pass over `setup` for `nprocs` processes: one
  /// bounded solo run per pid, plus, for every ordered pid pair (p, q),
  /// one bounded run of p against each frozen prefix of q's solo
  /// schedule. Mutual-exclusion violations during perturbed runs stop
  /// that run but keep the facts collected so far.
  [[nodiscard]] static StaticModel analyze(const SetupFn& setup, int nprocs);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] int register_count() const {
    return static_cast<int>(facts_.size());
  }

  [[nodiscard]] const RegisterFacts& facts(RegId reg) const {
    return facts_[static_cast<std::size_t>(reg)];
  }
  [[nodiscard]] const FirstUnit& first_unit(Pid pid) const {
    return first_units_[static_cast<std::size_t>(pid)];
  }
  [[nodiscard]] const SoloOutcome& solo_outcome(Pid pid) const {
    return solo_[static_cast<std::size_t>(pid)];
  }

  /// R3 query (por/dependence.h): true unless every collected write unit
  /// on `reg` ran section-quiet. A register with no collected write at
  /// all answers true — absence of facts is a coverage hole, never a
  /// license to refine.
  [[nodiscard]] bool write_may_change_section(RegId reg) const;

  /// The static may-conflict relation: units of pids `a` and `b` were
  /// observed accessing `reg` with a write on either side. Computed
  /// strictly from collected facts — the over-approximation suite pins
  /// every dynamically observed conflict to this table, so a coverage
  /// hole in the pass fails that suite instead of hiding behind a
  /// conservative fallback.
  [[nodiscard]] bool may_conflict(RegId reg, Pid a, Pid b) const;

  /// Total scheduler units the pass collected (observability / tests).
  [[nodiscard]] std::uint64_t units_collected() const {
    return units_collected_;
  }

 private:
  StaticModel() = default;

  int nprocs_ = 0;
  std::vector<RegisterFacts> facts_;
  std::vector<FirstUnit> first_units_;
  std::vector<SoloOutcome> solo_;
  std::uint64_t units_collected_ = 0;
};

}  // namespace cfc

#endif  // CFC_SA_STATIC_SUMMARY_H
