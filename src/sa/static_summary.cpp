#include "sa/static_summary.h"

#include <algorithm>
#include <optional>

#include "sched/event_sink.h"
#include "sched/sim.h"

namespace cfc {

namespace {

/// Unit budget of one solo dry-run. Solo runs of the registry models
/// terminate in well under a hundred units; the budget only bounds a
/// broken (non-terminating) model, which the linter then reports.
constexpr std::uint64_t kSoloUnitBudget = 4096;

/// Unit budget of one prefix-perturbed run: the perturbed process may spin
/// forever against the frozen peer, and a spin loop revisits its program
/// points within a few iterations — a short budget collects them all.
constexpr std::uint64_t kPerturbedUnitBudget = 1024;

/// Longest frozen prefix of the peer's solo schedule the pairwise battery
/// perturbs against (solo schedules are short; this is a defensive cap).
constexpr std::uint64_t kMaxPrefixLen = 256;

/// The instrumented recording sink: remembers the most recent counted
/// access so the collector can pair Sim::last_step_summary() (section
/// adjacency) with the access's written-bit mask and width.
class FootprintRecorder final : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override {
    if (ev.kind == TraceEvent::Kind::Access) {
      last_ = ev.access;
    }
  }

  [[nodiscard]] const Access& last_access() const { return last_; }

 private:
  Access last_;
};

/// One collection context: a fresh Sim wired to the recording sink.
struct CollectSim {
  Sim sim;
  FootprintRecorder recorder;
  std::shared_ptr<void> alg;

  explicit CollectSim(const StaticModel::SetupFn& setup) {
    sim.set_trace_recording(false);
    sim.add_sink(recorder);
    alg = setup(sim);
  }
};

void note_window(RegisterFacts& f, const Access& a) {
  if (a.field_width <= 0) {
    return;
  }
  f.field_written = true;
  const std::pair<int, int> window{a.field_shift, a.field_width};
  if (std::find(f.field_windows.begin(), f.field_windows.end(), window) ==
      f.field_windows.end()) {
    f.field_windows.push_back(window);
  }
}

}  // namespace

bool StaticModel::write_may_change_section(RegId reg) const {
  if (reg < 0 || reg >= register_count()) {
    return true;
  }
  const RegisterFacts& f = facts(reg);
  if (f.writer_pids == 0) {
    return true;  // no collected write: no fact to refine on
  }
  return f.write_section_adjacent;
}

bool StaticModel::may_conflict(RegId reg, Pid a, Pid b) const {
  if (reg < 0 || reg >= register_count() || a < 0 || b < 0 || a >= 32 ||
      b >= 32) {
    return true;
  }
  const RegisterFacts& f = facts(reg);
  const std::uint32_t ma = std::uint32_t{1} << static_cast<unsigned>(a);
  const std::uint32_t mb = std::uint32_t{1} << static_cast<unsigned>(b);
  const bool a_touches = ((f.reader_pids | f.writer_pids) & ma) != 0;
  const bool b_touches = ((f.reader_pids | f.writer_pids) & mb) != 0;
  const bool a_writes = (f.writer_pids & ma) != 0;
  const bool b_writes = (f.writer_pids & mb) != 0;
  return a_touches && b_touches && (a_writes || b_writes);
}

StaticModel StaticModel::analyze(const SetupFn& setup, int nprocs) {
  StaticModel model;
  model.nprocs_ = nprocs;
  model.first_units_.resize(static_cast<std::size_t>(nprocs));
  model.solo_.resize(static_cast<std::size_t>(nprocs));

  // Size the fact table from a probe instantiation (the register layout is
  // part of the configuration, identical across every fresh sim).
  {
    CollectSim probe(setup);
    model.facts_.resize(static_cast<std::size_t>(probe.sim.memory().size()));
    for (RegisterFacts& f : model.facts_) {
      f.written_fields_by_pid.assign(static_cast<std::size_t>(nprocs), 0);
    }
  }

  // Records the unit the collector just stepped on pid: its access facts
  // (from the sink) merged with the unit's section adjacency (from the
  // step summary).
  const auto collect_unit = [&model](CollectSim& cs, Pid pid) {
    model.units_collected_ += 1;
    const StepSummary& s = cs.sim.last_step_summary();
    if (!s.accessed) {
      return;
    }
    const Access& a = cs.recorder.last_access();
    RegisterFacts& f = model.facts_[static_cast<std::size_t>(s.reg)];
    f.observed = true;
    const std::uint32_t bit = std::uint32_t{1} << static_cast<unsigned>(pid);
    if (a.is_write()) {
      f.writer_pids |= bit;
      f.written_fields_by_pid[static_cast<std::size_t>(pid)] |=
          a.written_mask();
      f.write_section_adjacent = f.write_section_adjacent || s.section_changed;
      note_window(f, a);
    }
    if (!a.is_write() || a.is_read()) {
      f.reader_pids |= bit;
      f.read_section_adjacent = f.read_section_adjacent || s.section_changed;
    }
  };

  // Steps pid until completion/crash or the unit budget runs out,
  // collecting every unit; false on budget exhaustion. A thrown
  // mutual-exclusion violation (possible only in perturbed runs) stops
  // the run and keeps the facts gathered before it.
  const auto run_bounded = [&](CollectSim& cs, Pid pid, std::uint64_t budget,
                               SoloOutcome* outcome) -> bool {
    for (std::uint64_t i = 0; i < budget; ++i) {
      if (cs.sim.status(pid) != ProcStatus::NotStarted &&
          cs.sim.status(pid) != ProcStatus::Runnable) {
        return true;
      }
      try {
        (void)cs.sim.step(pid);
      } catch (const MutualExclusionViolation&) {
        return true;
      }
      collect_unit(cs, pid);
      if (outcome != nullptr) {
        outcome->units += 1;
        const Section sec = cs.sim.section(pid);
        outcome->entered_entry =
            outcome->entered_entry || sec == Section::Entry;
        outcome->entered_exit = outcome->entered_exit || sec == Section::Exit;
        const StepSummary& s = cs.sim.last_step_summary();
        if (s.accessed) {
          outcome->max_width_accessed =
              std::max(outcome->max_width_accessed,
                       cs.sim.memory().width(s.reg));
        }
      }
    }
    return cs.sim.status(pid) != ProcStatus::NotStarted &&
           cs.sim.status(pid) != ProcStatus::Runnable;
  };

  // --- First units: prologue + first posted access, on fresh sims. ---
  for (Pid p = 0; p < nprocs; ++p) {
    CollectSim cs(setup);
    cs.sim.ensure_started(p);
    FirstUnit& fu = model.first_units_[static_cast<std::size_t>(p)];
    fu.known = true;
    // ensure_started() resets the step summary and the prologue's section
    // changes land in it, so this reads exactly "the deterministic
    // prologue is section-quiet".
    fu.prologue_quiet = !cs.sim.last_step_summary().section_changed;
    const std::optional<PendingAccess> pa = cs.sim.pending(p);
    if (cs.sim.status(p) != ProcStatus::Runnable || !pa.has_value() ||
        pa->local_yield) {
      fu.yield = true;  // completes (or yields) without a shared access
    } else {
      fu.reg = pa->reg;
      fu.wrote = !(pa->kind == AccessKind::Read ||
                   (pa->kind == AccessKind::Bit && pa->bit_op == BitOp::Read));
    }
  }

  // --- Solo runs: each pid to completion on a fresh sim. ---
  std::vector<std::uint64_t> solo_units(static_cast<std::size_t>(nprocs));
  for (Pid p = 0; p < nprocs; ++p) {
    CollectSim cs(setup);
    SoloOutcome& out = model.solo_[static_cast<std::size_t>(p)];
    out.completed = run_bounded(cs, p, kSoloUnitBudget, &out);
    out.final_section = cs.sim.section(p);
    solo_units[static_cast<std::size_t>(p)] = out.units;
  }

  // --- Pairwise prefix-perturbed runs: for every ordered pair (p, q),
  // replay each prefix of q's solo schedule and then run p and q in
  // round-robin alternation from that point. The prefix alone reaches the
  // contended branches a perturbed memory state triggers (spin loops,
  // fast-path fallbacks); the alternation additionally reaches the
  // branches that need the peer to act BETWEEN two of p's steps (e.g. the
  // lamport-fast flag scan, taken only when the peer overwrites x after
  // p's own x := p) — a frozen peer can never produce those. When q
  // finishes early the alternation degenerates to p running solo against
  // the final state, so the frozen-prefix battery is subsumed. A crashed
  // q's memory states are a subset of these states, so crash injection
  // needs no separate battery.
  const auto steppable = [](const CollectSim& cs, Pid pid) {
    return cs.sim.status(pid) == ProcStatus::NotStarted ||
           cs.sim.status(pid) == ProcStatus::Runnable;
  };
  for (Pid p = 0; p < nprocs; ++p) {
    for (Pid q = 0; q < nprocs; ++q) {
      if (p == q) {
        continue;
      }
      const std::uint64_t prefixes =
          std::min(solo_units[static_cast<std::size_t>(q)], kMaxPrefixLen);
      for (std::uint64_t k = 1; k <= prefixes; ++k) {
        CollectSim cs(setup);
        bool ok = true;
        for (std::uint64_t i = 0; i < k && ok; ++i) {
          if (!steppable(cs, q)) {
            ok = false;
            break;
          }
          try {
            (void)cs.sim.step(q);
          } catch (const MutualExclusionViolation&) {
            ok = false;
            break;
          }
          collect_unit(cs, q);
        }
        if (!ok) {
          continue;
        }
        for (std::uint64_t i = 0; i < kPerturbedUnitBudget; ++i) {
          const Pid turn = (i % 2 == 0) ? p : q;
          const Pid other = (i % 2 == 0) ? q : p;
          const Pid act = steppable(cs, turn)    ? turn
                          : steppable(cs, other) ? other
                                                 : -1;
          if (act < 0) {
            break;
          }
          try {
            (void)cs.sim.step(act);
          } catch (const MutualExclusionViolation&) {
            break;  // keep the facts collected so far
          }
          collect_unit(cs, act);
        }
      }
    }
  }
  return model;
}

}  // namespace cfc
